//! Wire protocol of the `darkvec serve` daemon.
//!
//! Framing is minimal and explicit: every message — request or response
//! — is one *frame*, a little-endian `u32` payload length followed by
//! exactly that many payload bytes. Frames are capped at [`MAX_FRAME`]
//! so a hostile or broken client cannot make the server allocate
//! unbounded memory from a four-byte header.
//!
//! ```text
//! frame    := len:u32le payload[len]            (len <= MAX_FRAME)
//! request  := 0x01                              Ping
//!           | 0x02                              Status
//!           | 0x03 ip:u32le k:u16le n:u16le     Classify
//!                  (port:u16le proto:u8){n}
//!           | 0x04                              Shutdown
//!           | 0x05                              Alerts
//! response := 0x81                              Pong
//!           | 0x82 ready:u8 version:u64le checksum:u64le vocab:u32le
//!                  packets:u64le days:u32le retrains:u32le swaps:u32le
//!                  queries:u64le errors:u64le
//!                  [window_start:u64le window_end:u64le]
//!                                               Status
//!           | 0x83 version:u64le checksum:u64le
//!                  label_len:u16le label[..] confidence:f32le
//!                  n:u16le (ip:u32le sim:f32le){n}
//!                                               Classify
//!           | 0x84 msg_len:u16le msg[..]        Error
//!           | 0x85                              ShutdownAck
//!           | 0x86 n:u8 alert{n}                Alerts
//! alert    := lineage:u64le window_start:u64le window_end:u64le
//!             size:u32le reg_len:u8 reg[..]
//!             nports:u8 (plen:u8 port[..] share:f32le){nports}
//! ```
//!
//! The bracketed `Status` tail is a protocol-versioned extension: old
//! replies omit it and new decoders default the training window to
//! `(0, 0)`, so a v1 daemon still talks to a v2 client and vice versa.
//!
//! Decoding never panics: every length is validated against both the
//! remaining payload and a hard cap before anything is read, and any
//! malformed input comes back as a [`ProtoError`] the daemon turns into
//! a protocol-level [`Response::Error`] reply (the property tests below
//! feed arbitrary, truncated and oversized bytes through both codecs).

use bytes::{Buf, BufMut};
use darkvec_types::{Ipv4, Protocol};
use std::io::{self, Read, Write};

/// Hard cap on a frame's payload length. Large enough for any reply the
/// daemon produces (a classify reply with the maximum neighbour count is
/// well under 1 KiB), small enough that a garbage length prefix cannot
/// trigger a large allocation.
pub const MAX_FRAME: usize = 64 * 1024;

/// Cap on `(port, protocol)` pairs in one classify request.
pub const MAX_PORTS: usize = 64;

/// Cap on neighbours in one classify reply.
pub const MAX_NEIGHBORS: usize = 256;

/// Cap on alerts in one alerts reply; the daemon keeps only the newest.
pub const MAX_ALERTS: usize = 64;

/// Cap on evidence ports per alert.
pub const MAX_ALERT_PORTS: usize = 8;

/// Cap on the byte length of alert text fields (port names, regularity).
pub const MAX_ALERT_TEXT: usize = 32;

/// A client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Daemon state snapshot.
    Status,
    /// Classify a sender: by its embedding row when `ip` is in the
    /// current vocabulary, else by a query vector synthesised from the
    /// services its `ports` map to. `k` is the neighbour count.
    Classify {
        /// Sender to classify.
        ip: Ipv4,
        /// Destination `(port, protocol)` pairs observed from the sender.
        ports: Vec<(u16, Protocol)>,
        /// Neighbours to vote over (and return).
        k: u16,
    },
    /// Ask the daemon to stop accepting and exit its threads.
    Shutdown,
    /// Fetch the novelty alerts raised since startup (newest-capped at
    /// [`MAX_ALERTS`]).
    Alerts,
}

/// Daemon state reported by [`Response::Status`].
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct StatusReply {
    /// True once a first model has been swapped in.
    pub ready: bool,
    /// Serving-model version (0 before the first swap).
    pub version: u64,
    /// Serving-model checksum (see `serve::ServingModel`).
    pub checksum: u64,
    /// Embedded senders in the serving model.
    pub vocab: u32,
    /// Packets ingested so far.
    pub packets: u64,
    /// Capture days completed so far.
    pub days: u32,
    /// Retrains completed.
    pub retrains: u32,
    /// Model swaps performed.
    pub swaps: u32,
    /// Classify queries answered (including error replies).
    pub queries: u64,
    /// Protocol/ingest errors survived (the `serve.errors` counter).
    pub errors: u64,
    /// First capture day of the serving model's training window
    /// (protocol-versioned tail field; 0 when talking to an old daemon).
    pub window_start: u64,
    /// Last capture day of the serving model's training window (0 when
    /// talking to an old daemon or before the first swap).
    pub window_end: u64,
}

/// A classification answer.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassifyReply {
    /// Version of the model that answered.
    pub version: u64,
    /// Checksum of the model that answered — with `version`, the proof
    /// the reply came from a fully-built, atomically-swapped model.
    pub checksum: u64,
    /// Winning class name.
    pub label: String,
    /// Fraction of the `k` neighbour votes the winner received.
    pub confidence: f32,
    /// The neighbours that voted, by decreasing similarity.
    pub neighbors: Vec<(Ipv4, f32)>,
}

/// One novelty alert on the wire — a compact projection of
/// `lineage::NoveltyAlert` (evidence strings are clipped to
/// [`MAX_ALERT_TEXT`] bytes).
#[derive(Clone, Debug, PartialEq)]
pub struct AlertInfo {
    /// Lineage id of the novel group.
    pub lineage: u64,
    /// First capture day of the window the group appeared in.
    pub window_start: u64,
    /// Last capture day of that window.
    pub window_end: u64,
    /// Member count.
    pub size: u32,
    /// Temporal-regularity judgement, e.g. "daily".
    pub regularity: String,
    /// Top targeted ports (name, traffic share).
    pub top_ports: Vec<(String, f32)>,
}

/// A daemon reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Status`].
    Status(StatusReply),
    /// Reply to [`Request::Classify`].
    Classify(ClassifyReply),
    /// Protocol-level error: the request was understood to be broken
    /// (bad opcode, malformed payload, no model yet, unknown sender).
    Error(String),
    /// Reply to [`Request::Shutdown`], sent before the daemon exits.
    ShutdownAck,
    /// Reply to [`Request::Alerts`].
    Alerts(Vec<AlertInfo>),
}

/// Why a payload failed to decode.
#[derive(Clone, Debug, PartialEq)]
pub enum ProtoError {
    /// Empty payload.
    Empty,
    /// First byte is not a known opcode.
    BadOpcode(u8),
    /// Payload ended before the fields it promised.
    Truncated,
    /// A count/length field exceeds its cap.
    TooLarge(&'static str),
    /// Trailing bytes after a complete message.
    TrailingBytes,
    /// A protocol tag byte is not a known [`Protocol`].
    BadProtocol(u8),
    /// A label/message is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Empty => write!(f, "empty payload"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtoError::Truncated => write!(f, "truncated payload"),
            ProtoError::TooLarge(what) => write!(f, "{what} exceeds protocol cap"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
            ProtoError::BadProtocol(tag) => write!(f, "unknown protocol tag 0x{tag:02x}"),
            ProtoError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
        }
    }
}

/// Why a frame could not be read off the wire.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly before a new frame began.
    Closed,
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized(u32),
    /// Transport error, including a connection dropped or timed out
    /// mid-frame (`UnexpectedEof`, `WouldBlock`/`TimedOut`).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Oversized(len) => {
                write!(f, "frame length {len} exceeds MAX_FRAME {MAX_FRAME}")
            }
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

/// Reads one length-prefixed frame. Distinguishes a clean close at a
/// frame boundary ([`FrameError::Closed`]) from a mid-frame disconnect
/// (an [`FrameError::Io`] with `UnexpectedEof`) so the daemon can count
/// only the latter as a fault. An oversized length prefix is rejected
/// *before* any allocation.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection dropped inside a frame header",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len as usize > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    Ok(payload)
}

/// Writes one length-prefixed frame.
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME`] — the encoders below cap
/// every variable-length field, so an oversized outgoing frame is a
/// program bug, not an input condition.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME,
        "outgoing frame exceeds MAX_FRAME"
    );
    // Header and payload go out in one write: with TCP_NODELAY set a
    // separate 4-byte prefix write would ship as its own segment,
    // doubling per-message packet processing.
    let mut buf = Vec::with_capacity(4 + payload.len());
    // lint: cast-ok(asserted payload.len() <= MAX_FRAME above, and MAX_FRAME fits u32)
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    w.write_all(&buf)?;
    w.flush()
}

/// Encodes a request payload (no frame header).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    match req {
        Request::Ping => buf.put_u8(0x01),
        Request::Status => buf.put_u8(0x02),
        Request::Classify { ip, ports, k } => {
            assert!(ports.len() <= MAX_PORTS, "too many ports in request");
            buf.put_u8(0x03);
            buf.put_u32_le(ip.0);
            buf.put_u16_le(*k);
            // lint: cast-ok(asserted ports.len() <= MAX_PORTS above, which fits u16)
            buf.put_u16_le(ports.len() as u16);
            for (port, proto) in ports {
                buf.put_u16_le(*port);
                buf.put_u8(proto.tag());
            }
        }
        Request::Shutdown => buf.put_u8(0x04),
        Request::Alerts => buf.put_u8(0x05),
    }
    buf
}

/// Decodes a request payload. Never panics; every malformed input maps
/// to a [`ProtoError`].
pub fn decode_request(payload: &[u8]) -> Result<Request, ProtoError> {
    let mut buf = payload;
    if buf.remaining() == 0 {
        return Err(ProtoError::Empty);
    }
    let req = match buf.get_u8() {
        0x01 => Request::Ping,
        0x02 => Request::Status,
        0x03 => {
            if buf.remaining() < 4 + 2 + 2 {
                return Err(ProtoError::Truncated);
            }
            let ip = Ipv4(buf.get_u32_le());
            let k = buf.get_u16_le();
            let n = buf.get_u16_le() as usize;
            if n > MAX_PORTS {
                return Err(ProtoError::TooLarge("port count"));
            }
            if buf.remaining() < n * 3 {
                return Err(ProtoError::Truncated);
            }
            let mut ports = Vec::with_capacity(n);
            for _ in 0..n {
                let port = buf.get_u16_le();
                let tag = buf.get_u8();
                let proto = Protocol::from_tag(tag).ok_or(ProtoError::BadProtocol(tag))?;
                ports.push((port, proto));
            }
            Request::Classify { ip, ports, k }
        }
        0x04 => Request::Shutdown,
        0x05 => Request::Alerts,
        op => return Err(ProtoError::BadOpcode(op)),
    };
    if buf.remaining() > 0 {
        return Err(ProtoError::TrailingBytes);
    }
    Ok(req)
}

/// Encodes a response payload (no frame header).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match resp {
        Response::Pong => buf.put_u8(0x81),
        Response::Status(s) => {
            buf.put_u8(0x82);
            buf.put_u8(s.ready as u8); // lint: cast-ok(bool as u8 is 0 or 1 by language definition)
            buf.put_u64_le(s.version);
            buf.put_u64_le(s.checksum);
            buf.put_u32_le(s.vocab);
            buf.put_u64_le(s.packets);
            buf.put_u32_le(s.days);
            buf.put_u32_le(s.retrains);
            buf.put_u32_le(s.swaps);
            buf.put_u64_le(s.queries);
            buf.put_u64_le(s.errors);
            // Versioned tail: decoders accept payloads both with and
            // without these 16 bytes (absent ⇒ window (0, 0)), so replies
            // from a pre-tail daemon still parse.
            buf.put_u64_le(s.window_start);
            buf.put_u64_le(s.window_end);
        }
        Response::Classify(c) => {
            assert!(c.neighbors.len() <= MAX_NEIGHBORS, "too many neighbours");
            assert!(c.label.len() <= u16::MAX as usize, "label too long");
            buf.put_u8(0x83);
            buf.put_u64_le(c.version);
            buf.put_u64_le(c.checksum);
            // lint: cast-ok(asserted label.len() <= u16::MAX above)
            buf.put_u16_le(c.label.len() as u16);
            buf.put_slice(c.label.as_bytes());
            buf.put_f32_le(c.confidence);
            // lint: cast-ok(asserted neighbors.len() <= MAX_NEIGHBORS above, which fits u16)
            buf.put_u16_le(c.neighbors.len() as u16);
            for (ip, sim) in &c.neighbors {
                buf.put_u32_le(ip.0);
                buf.put_f32_le(*sim);
            }
        }
        Response::Error(msg) => {
            // Truncate rather than die: error text is advisory.
            let msg = &msg.as_bytes()[..msg.len().min(1024)];
            buf.put_u8(0x84);
            // lint: cast-ok(msg truncated to at most 1024 bytes on the line above)
            buf.put_u16_le(msg.len() as u16);
            buf.put_slice(msg);
        }
        Response::ShutdownAck => buf.put_u8(0x85),
        Response::Alerts(alerts) => {
            // Truncate rather than die: the daemon bounds its alert buffer
            // already, so clipping here only defends against misuse.
            let alerts = &alerts[..alerts.len().min(MAX_ALERTS)];
            buf.put_u8(0x86);
            // lint: cast-ok(sliced to at most MAX_ALERTS above, which fits u8)
            buf.put_u8(alerts.len() as u8);
            for a in alerts {
                buf.put_u64_le(a.lineage);
                buf.put_u64_le(a.window_start);
                buf.put_u64_le(a.window_end);
                buf.put_u32_le(a.size);
                let reg = clip(&a.regularity, MAX_ALERT_TEXT);
                // lint: cast-ok(clip bounds reg to MAX_ALERT_TEXT bytes, which fits u8)
                buf.put_u8(reg.len() as u8);
                buf.put_slice(reg.as_bytes());
                let ports = &a.top_ports[..a.top_ports.len().min(MAX_ALERT_PORTS)];
                // lint: cast-ok(sliced to at most MAX_ALERT_PORTS above, which fits u8)
                buf.put_u8(ports.len() as u8);
                for (name, share) in ports {
                    let name = clip(name, MAX_ALERT_TEXT);
                    // lint: cast-ok(clip bounds name to MAX_ALERT_TEXT bytes, which fits u8)
                    buf.put_u8(name.len() as u8);
                    buf.put_slice(name.as_bytes());
                    buf.put_f32_le(*share);
                }
            }
        }
    }
    buf
}

/// Clips a string to at most `max` bytes without splitting a UTF-8
/// character.
fn clip(s: &str, max: usize) -> &str {
    if s.len() <= max {
        return s;
    }
    let mut end = max;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// Decodes a response payload. Never panics.
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtoError> {
    let mut buf = payload;
    if buf.remaining() == 0 {
        return Err(ProtoError::Empty);
    }
    let resp = match buf.get_u8() {
        0x81 => Response::Pong,
        0x82 => {
            if buf.remaining() < 1 + 8 + 8 + 4 + 8 + 4 + 4 + 4 + 8 + 8 {
                return Err(ProtoError::Truncated);
            }
            let ready = buf.get_u8() != 0;
            let version = buf.get_u64_le();
            let checksum = buf.get_u64_le();
            let vocab = buf.get_u32_le();
            let packets = buf.get_u64_le();
            let days = buf.get_u32_le();
            let retrains = buf.get_u32_le();
            let swaps = buf.get_u32_le();
            let queries = buf.get_u64_le();
            let errors = buf.get_u64_le();
            // Versioned tail (see the encoder): absent in old payloads.
            let (window_start, window_end) = if buf.remaining() >= 16 {
                (buf.get_u64_le(), buf.get_u64_le())
            } else {
                (0, 0)
            };
            Response::Status(StatusReply {
                ready,
                version,
                checksum,
                vocab,
                packets,
                days,
                retrains,
                swaps,
                queries,
                errors,
                window_start,
                window_end,
            })
        }
        0x83 => {
            if buf.remaining() < 8 + 8 + 2 {
                return Err(ProtoError::Truncated);
            }
            let version = buf.get_u64_le();
            let checksum = buf.get_u64_le();
            let label_len = buf.get_u16_le() as usize;
            if buf.remaining() < label_len {
                return Err(ProtoError::Truncated);
            }
            let label = String::from_utf8(buf.chunk()[..label_len].to_vec())
                .map_err(|_| ProtoError::BadUtf8)?;
            buf.advance(label_len);
            if buf.remaining() < 4 + 2 {
                return Err(ProtoError::Truncated);
            }
            let confidence = buf.get_f32_le();
            let n = buf.get_u16_le() as usize;
            if n > MAX_NEIGHBORS {
                return Err(ProtoError::TooLarge("neighbour count"));
            }
            if buf.remaining() < n * 8 {
                return Err(ProtoError::Truncated);
            }
            let mut neighbors = Vec::with_capacity(n);
            for _ in 0..n {
                let ip = Ipv4(buf.get_u32_le());
                let sim = buf.get_f32_le();
                neighbors.push((ip, sim));
            }
            Response::Classify(ClassifyReply {
                version,
                checksum,
                label,
                confidence,
                neighbors,
            })
        }
        0x84 => {
            if buf.remaining() < 2 {
                return Err(ProtoError::Truncated);
            }
            let len = buf.get_u16_le() as usize;
            if len > 1024 {
                return Err(ProtoError::TooLarge("error message"));
            }
            if buf.remaining() < len {
                return Err(ProtoError::Truncated);
            }
            let msg =
                String::from_utf8(buf.chunk()[..len].to_vec()).map_err(|_| ProtoError::BadUtf8)?;
            buf.advance(len);
            Response::Error(msg)
        }
        0x85 => Response::ShutdownAck,
        0x86 => {
            if buf.remaining() < 1 {
                return Err(ProtoError::Truncated);
            }
            let n = buf.get_u8() as usize;
            if n > MAX_ALERTS {
                return Err(ProtoError::TooLarge("alert count"));
            }
            let mut alerts = Vec::with_capacity(n);
            for _ in 0..n {
                if buf.remaining() < 8 + 8 + 8 + 4 + 1 {
                    return Err(ProtoError::Truncated);
                }
                let lineage = buf.get_u64_le();
                let window_start = buf.get_u64_le();
                let window_end = buf.get_u64_le();
                let size = buf.get_u32_le();
                let reg_len = buf.get_u8() as usize;
                if reg_len > MAX_ALERT_TEXT {
                    return Err(ProtoError::TooLarge("regularity text"));
                }
                if buf.remaining() < reg_len {
                    return Err(ProtoError::Truncated);
                }
                let regularity = String::from_utf8(buf.chunk()[..reg_len].to_vec())
                    .map_err(|_| ProtoError::BadUtf8)?;
                buf.advance(reg_len);
                if buf.remaining() < 1 {
                    return Err(ProtoError::Truncated);
                }
                let nports = buf.get_u8() as usize;
                if nports > MAX_ALERT_PORTS {
                    return Err(ProtoError::TooLarge("alert port count"));
                }
                let mut top_ports = Vec::with_capacity(nports);
                for _ in 0..nports {
                    if buf.remaining() < 1 {
                        return Err(ProtoError::Truncated);
                    }
                    let plen = buf.get_u8() as usize;
                    if plen > MAX_ALERT_TEXT {
                        return Err(ProtoError::TooLarge("alert port text"));
                    }
                    if buf.remaining() < plen + 4 {
                        return Err(ProtoError::Truncated);
                    }
                    let name = String::from_utf8(buf.chunk()[..plen].to_vec())
                        .map_err(|_| ProtoError::BadUtf8)?;
                    buf.advance(plen);
                    let share = buf.get_f32_le();
                    top_ports.push((name, share));
                }
                alerts.push(AlertInfo {
                    lineage,
                    window_start,
                    window_end,
                    size,
                    regularity,
                    top_ports,
                });
            }
            Response::Alerts(alerts)
        }
        op => return Err(ProtoError::BadOpcode(op)),
    };
    if buf.remaining() > 0 {
        return Err(ProtoError::TrailingBytes);
    }
    Ok(resp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_protocol() -> impl Strategy<Value = Protocol> {
        prop_oneof![
            Just(Protocol::Tcp),
            Just(Protocol::Udp),
            Just(Protocol::Icmp)
        ]
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            Just(Request::Ping),
            Just(Request::Status),
            Just(Request::Shutdown),
            (
                any::<u32>(),
                prop::collection::vec((any::<u16>(), arb_protocol()), 0..MAX_PORTS),
                any::<u16>(),
            )
                .prop_map(|(ip, ports, k)| Request::Classify {
                    ip: Ipv4(ip),
                    ports,
                    k,
                }),
        ]
    }

    fn arb_status() -> impl Strategy<Value = StatusReply> {
        (
            (any::<bool>(), any::<u64>(), any::<u64>(), any::<u32>()),
            (any::<u64>(), any::<u32>(), any::<u32>(), any::<u32>()),
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        )
            .prop_map(
                |(
                    (ready, version, checksum, vocab),
                    (packets, days, retrains, swaps),
                    (q, e, ws, we),
                )| {
                    StatusReply {
                        ready,
                        version,
                        checksum,
                        vocab,
                        packets,
                        days,
                        retrains,
                        swaps,
                        queries: q,
                        errors: e,
                        window_start: ws,
                        window_end: we,
                    }
                },
            )
    }

    /// Lowercase ASCII strings (the vendored proptest has no regex
    /// strategies).
    fn arb_text(max: usize) -> impl Strategy<Value = String> {
        prop::collection::vec(97u8..=122, 0..max).prop_map(|v| String::from_utf8(v).expect("ascii"))
    }

    fn arb_alert() -> impl Strategy<Value = AlertInfo> {
        (
            (any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>()),
            arb_text(MAX_ALERT_TEXT),
            prop::collection::vec((arb_text(MAX_ALERT_TEXT), any::<u32>()), 0..MAX_ALERT_PORTS),
        )
            .prop_map(|((lineage, ws, we, size), regularity, ports)| AlertInfo {
                lineage,
                window_start: ws,
                window_end: we,
                size,
                regularity,
                top_ports: ports
                    .into_iter()
                    // From raw bits so NaN/inf share bytes are covered.
                    .map(|(name, bits)| (name, f32::from_bits(bits)))
                    .collect(),
            })
    }

    fn arb_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            Just(Response::Pong),
            Just(Response::ShutdownAck),
            arb_status().prop_map(Response::Status),
            arb_text(64).prop_map(Response::Error),
            prop::collection::vec(arb_alert(), 0..5).prop_map(Response::Alerts),
            (
                any::<u64>(),
                any::<u64>(),
                arb_text(16),
                any::<u32>(),
                prop::collection::vec((any::<u32>(), any::<u32>()), 0..16),
            )
                .prop_map(|(version, checksum, label, conf_bits, neigh)| {
                    Response::Classify(ClassifyReply {
                        version,
                        checksum,
                        label,
                        // From raw bits so NaN/inf payload bytes are covered.
                        confidence: f32::from_bits(conf_bits),
                        neighbors: neigh
                            .into_iter()
                            .map(|(ip, sim)| (Ipv4(ip), f32::from_bits(sim)))
                            .collect(),
                    })
                }),
        ]
    }

    proptest! {
        // Round trips are compared on re-encoded bytes, not values, so
        // NaN floats (payload bytes like any other) don't break equality.
        #[test]
        fn request_round_trip(req in arb_request()) {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("decode own encoding");
            prop_assert_eq!(encode_request(&back), bytes);
        }

        #[test]
        fn response_round_trip(resp in arb_response()) {
            let bytes = encode_response(&resp);
            let back = decode_response(&bytes).expect("decode own encoding");
            prop_assert_eq!(encode_response(&back), bytes);
        }

        #[test]
        fn truncated_requests_error_without_panic(req in arb_request()) {
            let bytes = encode_request(&req);
            for cut in 0..bytes.len() {
                // A strict prefix is Err(Truncated/Empty) — except for a
                // classify whose port list shrinks to a shorter valid
                // message, which the trailing-bytes check rules out here
                // because the *length* field promises more.
                prop_assert!(decode_request(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn truncated_responses_error_without_panic(resp in arb_response()) {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                // One legal cut exists: a Status reply minus its 16-byte
                // versioned window tail IS the old wire format and decodes
                // (that compatibility is asserted separately below).
                if matches!(resp, Response::Status(_)) && cut == bytes.len() - 16 {
                    continue;
                }
                prop_assert!(decode_response(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
        }

        #[test]
        fn frame_round_trip(payload in prop::collection::vec(any::<u8>(), 0..512)) {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            let mut r = &wire[..];
            prop_assert_eq!(read_frame(&mut r).unwrap(), payload);
            prop_assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
        }

        #[test]
        fn truncated_frames_are_io_errors(payload in prop::collection::vec(any::<u8>(), 1..128)) {
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            for cut in 1..wire.len() {
                let mut r = &wire[..cut];
                prop_assert!(matches!(
                    read_frame(&mut r),
                    Err(FrameError::Io(_)) | Err(FrameError::Oversized(_))
                ));
            }
        }

        #[test]
        fn oversized_length_prefix_is_rejected(extra in 1u32..u32::MAX - MAX_FRAME as u32) {
            let len = MAX_FRAME as u32 + extra;
            let wire = len.to_le_bytes();
            let mut r = &wire[..];
            prop_assert!(matches!(read_frame(&mut r), Err(FrameError::Oversized(l)) if l == len));
        }
    }

    /// A pre-tail Status payload (no window fields) must still decode,
    /// with the training window defaulting to `(0, 0)` — the promise that
    /// keeps old daemons and new clients interoperable.
    #[test]
    fn status_without_window_tail_decodes_as_old_format() {
        let full = StatusReply {
            ready: true,
            version: 7,
            checksum: 0xDEAD_BEEF,
            vocab: 123,
            packets: 456,
            days: 9,
            retrains: 3,
            swaps: 3,
            queries: 42,
            errors: 1,
            window_start: 5,
            window_end: 11,
        };
        let bytes = encode_response(&Response::Status(full));
        let old = &bytes[..bytes.len() - 16];
        match decode_response(old).expect("old format must decode") {
            Response::Status(s) => {
                assert_eq!(s.version, 7);
                assert_eq!(s.queries, 42);
                assert_eq!((s.window_start, s.window_end), (0, 0));
            }
            other => panic!("expected Status, got {other:?}"),
        }
        // A partial tail (1..15 leftover bytes) is still an error.
        for cut in 1..16 {
            assert!(
                decode_response(&bytes[..bytes.len() - cut]).is_err(),
                "partial tail of {} bytes must not decode",
                16 - cut
            );
        }
        // The full new format round-trips the window.
        match decode_response(&bytes).expect("new format") {
            Response::Status(s) => assert_eq!((s.window_start, s.window_end), (5, 11)),
            other => panic!("expected Status, got {other:?}"),
        }
    }

    /// Alert text fields are clipped to [`MAX_ALERT_TEXT`] bytes on a
    /// char boundary — a multi-byte char straddling the limit must not
    /// split into invalid UTF-8.
    #[test]
    fn alert_text_clips_on_char_boundaries() {
        let alert = AlertInfo {
            lineage: 1,
            window_start: 0,
            window_end: 1,
            size: 5,
            // 31 ASCII bytes then a 2-byte char straddling the 32-byte cap.
            regularity: format!("{}é", "x".repeat(31)),
            top_ports: vec![("y".repeat(100), 0.5)],
        };
        let bytes = encode_response(&Response::Alerts(vec![alert]));
        match decode_response(&bytes).expect("clipped alert must decode") {
            Response::Alerts(alerts) => {
                assert_eq!(alerts[0].regularity, "x".repeat(31));
                assert_eq!(alerts[0].top_ports[0].0, "y".repeat(32));
            }
            other => panic!("expected Alerts, got {other:?}"),
        }
    }

    #[test]
    fn close_at_boundary_vs_mid_frame() {
        let mut r: &[u8] = &[];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
        let mut r: &[u8] = &[3, 0]; // half a length prefix
        assert!(matches!(read_frame(&mut r), Err(FrameError::Io(_))));
    }
}
