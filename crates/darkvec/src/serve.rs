//! The `darkvec serve` daemon: continuous darknet monitoring as a
//! long-running process (§8 deployment cadence, made streaming).
//!
//! Three cooperating threads, glued by channels and one lock:
//!
//! * **Ingest** — consumes micro-batches of packets from an
//!   [`std::sync::mpsc`] channel, buffers the current capture day, and on
//!   day rollover builds that day's corpus shard
//!   ([`crate::corpus::build_day_corpus`], served from the
//!   content-addressed [`ArtifactCache`] when available — the cache keys
//!   are byte-compatible with the batch incremental runner, so a serve
//!   daemon and a `darkvec incremental` run share artifacts). When enough
//!   days exist it schedules a retrain of the trailing window.
//! * **Trainer** — waits on a single-slot job queue (a slow train
//!   *coalesces* rollovers instead of queueing them), trains warm-started
//!   from the previous window's model like
//!   [`crate::incremental::run_sliding`], then **atomically swaps** the
//!   new [`ServingModel`] in: the model is fully built — matrix
//!   normalised, index constructed, labels and centroids attached,
//!   checksum computed — *before* the swap, which is a single
//!   `RwLock<Option<Arc<_>>>` store. Queries never observe a partial
//!   model; each reply echoes the `(version, checksum)` pair of the model
//!   that answered, and the daemon keeps a swap history so tests can
//!   prove every reply came from a completely-swapped model.
//! * **Acceptor** — a non-blocking TCP accept loop (same poll pattern as
//!   `darkvec_obs::serve::MetricsServer`); each connection gets a thread
//!   speaking the length-prefixed [`crate::protocol`]. Malformed frames,
//!   mid-frame disconnects and slow-loris stalls are logged, counted in
//!   `serve.errors`, and never take the daemon down.
//!
//! Labels are derived from packet fingerprints observed in the training
//! window (senders with a Mirai-fingerprinted probe vs. unknown), so the
//! daemon needs no ground-truth side channel. Senders outside the
//! embedding are classified through per-service centroid vectors
//! accumulated during ingest — the external query path of
//! [`crate::supervised::Evaluation::classify_external`], served here by
//! the configured [`NeighborBackend`].

// lint: relaxed-ok(request/fault/drop counters are metrics counters; daemon control flow uses SeqCst and lock acquisition for synchronization)

use crate::cache::{hash_packets, ArtifactCache, KeyHasher};
use crate::config::DarkVecConfig;
use crate::corpus::{build_day_corpus, corpus_from_bytes, corpus_stats, corpus_to_bytes};
use crate::lineage::{ClusterObservation, LineageConfig, LineageTracker};
use crate::pipeline::{resolve_services, TrainedModel};
use crate::protocol::{
    decode_request, encode_request, encode_response, read_frame, write_frame, AlertInfo,
    ClassifyReply, FrameError, Request, Response, StatusReply, MAX_ALERTS, MAX_ALERT_PORTS,
    MAX_NEIGHBORS,
};
use crate::services::{ServiceId, ServiceMap};
use crate::unsupervised::{cluster_embedding, ClusterConfig};
use darkvec_ml::ann::{NeighborBackend, NeighborIndex};
use darkvec_ml::classifier::{loo_knn_classify, Label};
use darkvec_ml::vectors::{normalize_vec, Matrix, NormalizedMatrix};
use darkvec_types::{Ipv4, Packet, Protocol, Trace};
use darkvec_w2v::{count_skipgrams, train_prepared};
use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Label id for senders without a recognised fingerprint.
pub const LABEL_UNKNOWN: Label = 0;
/// Label id for senders with a Mirai-fingerprinted probe in the window.
pub const LABEL_MIRAI: Label = 1;

/// Configuration of a serve daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Pipeline configuration; `cfg.window` drives the retrain cadence
    /// (train on the trailing `days` complete days, every `stride` days).
    pub cfg: DarkVecConfig,
    /// Epochs for warm-started retrains (0 = always cold).
    pub warm_epochs: usize,
    /// Default neighbour count for classify requests that pass `k = 0`.
    pub k: usize,
    /// Neighbour-search backend for query serving.
    pub backend: NeighborBackend,
    /// Artifact cache directory; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Listen address, e.g. `127.0.0.1:0`.
    pub listen: String,
    /// How long a connection may stall *inside* a frame before it is
    /// dropped as a slow-loris fault. Idle connections between frames
    /// are not limited.
    pub read_timeout: Duration,
    /// Ingest channel depth, in micro-batches (backpressure bound).
    pub queue_depth: usize,
    /// Trainer/index-build threads (0 = all cores).
    pub threads: usize,
    /// Worker threads for window-corpus shard merging before a retrain
    /// (0 = all cores). Pure wall-clock — the merged corpus is
    /// bit-identical for any value (see [`crate::shard`]).
    pub shard_threads: usize,
}

impl ServeConfig {
    /// A daemon serving `cfg` with conservative defaults.
    pub fn new(cfg: DarkVecConfig) -> Self {
        ServeConfig {
            cfg,
            warm_epochs: 2,
            k: 7,
            backend: NeighborBackend::Exact,
            cache_dir: None,
            listen: "127.0.0.1:0".to_string(),
            read_timeout: Duration::from_secs(2),
            queue_depth: 64,
            threads: 0,
            shard_threads: 0,
        }
    }
}

/// One completed capture day, ready for window assembly.
struct DayShard {
    day: u64,
    /// Content-addressed corpus cache key (identical construction to the
    /// batch incremental runner).
    day_key: u64,
    corpus: Vec<Vec<Ipv4>>,
    /// Senders seen with a Mirai fingerprint this day.
    mirai: HashSet<Ipv4>,
    /// Packets per `(sender, service)` this day, for centroid synthesis.
    svc_counts: HashMap<Ipv4, HashMap<ServiceId, u64>>,
}

/// A scheduled retrain: the trailing window's shards plus the service
/// map they were tokenised with.
struct TrainJob {
    start_day: u64,
    end_day: u64,
    shards: Vec<Arc<DayShard>>,
    services: Arc<ServiceMap>,
    services_hash: u64,
}

/// A fully-built model being served. Everything a query needs is
/// constructed before the instance becomes visible to any connection.
pub struct ServingModel {
    /// Monotonic swap version (first model is 1).
    pub version: u64,
    /// FNV-1a over the normalised matrix and labels; recomputable via
    /// [`ServingModel::compute_checksum`] to prove integrity.
    pub checksum: u64,
    /// `(start_day, end_day)` of the training window.
    pub window: (u64, u64),
    /// The underlying trained artifact (embedding + services + stats).
    pub model: TrainedModel,
    /// The shared normalised matrix behind the index.
    pub normed: Arc<NormalizedMatrix>,
    index: Box<dyn NeighborIndex>,
    /// Voting label per embedding row.
    pub labels: Vec<Label>,
    /// Class display names, indexed by label id.
    pub class_names: Vec<String>,
    /// Per-service centroid query vectors (empty where no mass).
    centroids: Vec<Vec<f32>>,
}

impl ServingModel {
    /// The checksum of the served content, recomputed from live state.
    /// Equal to [`ServingModel::checksum`] for a sound model.
    pub fn compute_checksum(&self) -> u64 {
        checksum_of(&self.normed, &self.labels)
    }

    /// Resolves a query vector: the sender's embedding row when it is in
    /// vocabulary, else a synthesis from the services its ports map to.
    fn query_vector(&self, ip: Ipv4, ports: &[(u16, Protocol)]) -> Result<Vec<f32>, String> {
        if let Some(row) = self.model.embedding.get(&ip) {
            return Ok(row.to_vec());
        }
        let dim = self.normed.dim();
        let mut q = vec![0.0f32; dim];
        for &(port, proto) in ports {
            let key = darkvec_types::PortKey { port, proto };
            let svc = self.model.services.service_of(key);
            if let Some(c) = self.centroids.get(svc) {
                for (qi, ci) in q.iter_mut().zip(c) {
                    *qi += *ci;
                }
            }
        }
        if q.iter().all(|&x| x == 0.0) {
            return Err(format!(
                "sender {ip} is not embedded and no queried port maps to a known service"
            ));
        }
        Ok(q)
    }

    /// Answers one classify request against this model. The voting is
    /// exactly [`loo_knn_classify`] over the backend's `knn_batch` — the
    /// same path as `Evaluation::classify_external` when the backend is
    /// exact.
    pub fn classify(
        &self,
        ip: Ipv4,
        ports: &[(u16, Protocol)],
        k: usize,
    ) -> Result<ClassifyReply, String> {
        let k = k.clamp(1, MAX_NEIGHBORS.min(self.normed.rows().max(1)));
        let query = self.query_vector(ip, ports)?;
        let mut lists = self.index.knn_batch(&query, k, 1);
        let neighbors = lists.pop().unwrap_or_default();
        let prediction = loo_knn_classify(std::slice::from_ref(&neighbors), &self.labels, k)
            .predictions
            .first()
            .copied()
            .unwrap_or(LABEL_UNKNOWN);
        let votes = neighbors
            .iter()
            .filter(|n| self.labels[n.index] == prediction)
            .count();
        let confidence = if neighbors.is_empty() {
            0.0
        } else {
            votes as f32 / neighbors.len() as f32
        };
        let label = self
            .class_names
            .get(prediction as usize)
            .cloned()
            .unwrap_or_else(|| format!("class-{prediction}"));
        Ok(ClassifyReply {
            version: self.version,
            checksum: self.checksum,
            label,
            confidence,
            neighbors: neighbors
                .iter()
                .map(|n| {
                    (
                        *self.model.embedding.vocab().word(n.index as u32),
                        n.similarity,
                    )
                })
                .collect(),
        })
    }
}

/// FNV-1a content hash over the normalised matrix and row labels.
fn checksum_of(normed: &NormalizedMatrix, labels: &[Label]) -> u64 {
    let mut h = KeyHasher::new();
    h.write_str("serving-model")
        .write_u64(normed.rows() as u64)
        .write_u64(normed.dim() as u64);
    for &x in normed.data() {
        h.write_u64(x.to_bits() as u64);
    }
    for &l in labels {
        h.write_u64(l as u64);
    }
    h.finish()
}

/// One entry of the swap history: recorded immediately before the model
/// became visible, so any reply's `(version, checksum)` pair must match
/// an entry — the "no half-written model" proof used by the tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwapRecord {
    /// Model version.
    pub version: u64,
    /// Content checksum at build time.
    pub checksum: u64,
    /// Embedded senders.
    pub vocab: usize,
    /// Training window `(start_day, end_day)`.
    pub window: (u64, u64),
}

/// Point-in-time daemon statistics (per-daemon, not the global obs
/// registry — several daemons can coexist in one test process).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaemonStats {
    /// Packets ingested.
    pub packets: u64,
    /// Capture days completed.
    pub days: u64,
    /// Retrains completed.
    pub retrains: u64,
    /// Model swaps performed.
    pub swaps: u64,
    /// Classify queries answered (including error replies).
    pub queries: u64,
    /// Faults survived (protocol, transport, artifact, ingest).
    pub errors: u64,
}

/// State shared between the daemon's threads.
struct Shared {
    cfg: ServeConfig,
    model: RwLock<Option<Arc<ServingModel>>>,
    swaps: Mutex<Vec<SwapRecord>>,
    /// Novelty alerts raised by the lineage matcher after model swaps,
    /// newest last, capped at [`MAX_ALERTS`] (oldest evicted first).
    alerts: Mutex<Vec<AlertInfo>>,
    job: Mutex<Option<TrainJob>>,
    job_ready: Condvar,
    training: AtomicBool,
    stream_done: AtomicBool,
    shutdown: AtomicBool,
    packets: AtomicU64,
    days: AtomicU64,
    retrains: AtomicU64,
    swap_count: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
}

impl Shared {
    /// Poison-recovering lock accessors. A panicked holder poisons a
    /// std lock; propagating that panic from every later acquisition
    /// would turn one worker's bug into a daemon-wide outage. The data
    /// under these locks stays valid mid-update (an `Arc` pointer slot,
    /// a records `Vec`, a queued-job `Option`), so recovery is sound:
    /// take the guard out of the poison error and carry on.
    fn model_read(&self) -> std::sync::RwLockReadGuard<'_, Option<Arc<ServingModel>>> {
        self.model.read().unwrap_or_else(|e| e.into_inner())
    }

    fn model_write(&self) -> std::sync::RwLockWriteGuard<'_, Option<Arc<ServingModel>>> {
        self.model.write().unwrap_or_else(|e| e.into_inner())
    }

    fn swaps_lock(&self) -> std::sync::MutexGuard<'_, Vec<SwapRecord>> {
        self.swaps.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn alerts_lock(&self) -> std::sync::MutexGuard<'_, Vec<AlertInfo>> {
        self.alerts.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn job_lock(&self) -> std::sync::MutexGuard<'_, Option<TrainJob>> {
        self.job.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Records a survivable fault: per-daemon counter, global obs
    /// counter, and a warn log line.
    fn fault(&self, what: &str, detail: &str) {
        self.errors.fetch_add(1, Ordering::Relaxed);
        darkvec_obs::metrics::counter("serve.errors").add(1);
        darkvec_obs::warn!("serve: {what}: {detail}");
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.job_ready.notify_all();
    }

    fn status(&self) -> StatusReply {
        let (ready, version, checksum, vocab, window) = match &*self.model_read() {
            Some(m) => (
                true,
                m.version,
                m.checksum,
                m.normed.rows() as u32,
                m.window,
            ),
            None => (false, 0, 0, 0, (0, 0)),
        };
        StatusReply {
            ready,
            version,
            checksum,
            vocab,
            window_start: window.0,
            window_end: window.1,
            packets: self.packets.load(Ordering::Relaxed),
            days: self.days.load(Ordering::Relaxed) as u32,
            retrains: self.retrains.load(Ordering::Relaxed) as u32,
            swaps: self.swap_count.load(Ordering::Relaxed) as u32,
            queries: self.queries.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
        }
    }
}

/// The running daemon. Owns its threads; [`Daemon::shutdown`] (or drop)
/// stops and joins them.
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Daemon {
    /// Starts a daemon: binds `cfg.listen`, spawns the ingest, trainer
    /// and acceptor threads, and returns the daemon plus the packet
    /// ingest channel. Dropping all senders ends the stream: the daemon
    /// finalises the partial day, trains a final model, and keeps
    /// serving queries until shut down.
    pub fn start(cfg: ServeConfig) -> io::Result<(Daemon, SyncSender<Vec<Packet>>)> {
        assert!(cfg.cfg.dt > 0, "dt must be positive");
        assert!(
            darkvec_types::DAY.is_multiple_of(cfg.cfg.dt),
            "serve sharding needs dt to divide a day"
        );
        assert!(cfg.cfg.window.days > 0, "window.days must be positive");
        assert!(cfg.cfg.window.stride > 0, "window.stride must be positive");
        assert!(cfg.k > 0, "default k must be positive");
        let listener = TcpListener::bind(&cfg.listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let cache = match &cfg.cache_dir {
            Some(dir) => Some(ArtifactCache::new(dir)?),
            None => None,
        };
        let (tx, rx) = sync_channel::<Vec<Packet>>(cfg.queue_depth.max(1));
        let shared = Arc::new(Shared {
            cfg,
            model: RwLock::new(None),
            swaps: Mutex::new(Vec::new()),
            alerts: Mutex::new(Vec::new()),
            job: Mutex::new(None),
            job_ready: Condvar::new(),
            training: AtomicBool::new(false),
            stream_done: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            packets: AtomicU64::new(0),
            days: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
            swap_count: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let cache = Arc::new(cache);
        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let cache = Arc::clone(&cache);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-ingest".into())
                    .spawn(move || ingest_loop(&shared, &rx, &cache))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            let cache = Arc::clone(&cache);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-trainer".into())
                    .spawn(move || trainer_loop(&shared, &cache))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".into())
                    .spawn(move || accept_loop(&shared, &listener))?,
            );
        }
        darkvec_obs::info!("serve: listening on {addr}");
        Ok((
            Daemon {
                addr,
                shared,
                threads,
            },
            tx,
        ))
    }

    /// The bound listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The currently served model, if any (an `Arc` snapshot: stays
    /// valid across later swaps).
    pub fn current_model(&self) -> Option<Arc<ServingModel>> {
        self.shared.model_read().clone()
    }

    /// A copy of the swap history.
    pub fn swap_history(&self) -> Vec<SwapRecord> {
        self.shared.swaps_lock().clone()
    }

    /// A copy of the retained novelty alerts (newest last, capped at
    /// [`MAX_ALERTS`]) — the same list [`Request::Alerts`] serves.
    pub fn alerts(&self) -> Vec<AlertInfo> {
        self.shared.alerts_lock().clone()
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> DaemonStats {
        let s = &self.shared;
        DaemonStats {
            packets: s.packets.load(Ordering::Relaxed),
            days: s.days.load(Ordering::Relaxed),
            retrains: s.retrains.load(Ordering::Relaxed),
            swaps: s.swap_count.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
        }
    }

    /// True once a shutdown was requested (API call or protocol
    /// [`Request::Shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Waits until the served model version reaches `version`.
    pub fn wait_version(&self, version: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.current_model().is_some_and(|m| m.version >= version) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Waits until no retrain is queued or running.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let queued = self.shared.job_lock().is_some();
            if !queued && !self.shared.training.load(Ordering::SeqCst) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops the daemon and joins its threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.begin_shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The ingest thread: day buffering, shard building, retrain scheduling.
fn ingest_loop(shared: &Shared, rx: &Receiver<Vec<Packet>>, cache: &Option<ArtifactCache>) {
    let cfg = &shared.cfg;
    let fingerprint = cfg.cfg.fingerprint();
    let ingest_ns = darkvec_obs::metrics::histogram("serve.ingest_ns");
    let ingested = darkvec_obs::metrics::counter("serve.ingested");

    let mut services: Option<(Arc<ServiceMap>, u64)> = match &cfg.cfg.service {
        // Auto services need traffic; resolved from the first complete day.
        crate::config::ServiceDef::Auto(_) => None,
        def => {
            let map = resolve_services(&Trace::default(), def);
            let hash = crate::cache::fnv1a64(&map.to_bytes());
            Some((Arc::new(map), hash))
        }
    };
    let mut shards: Vec<Arc<DayShard>> = Vec::new();
    let mut day_buf: Vec<Packet> = Vec::new();
    let mut current_day: Option<u64> = None;
    let mut last_scheduled: Option<(u64, u64)> = None;

    let finalize_day = |day: u64,
                        buf: &mut Vec<Packet>,
                        shards: &mut Vec<Arc<DayShard>>,
                        services: &mut Option<(Arc<ServiceMap>, u64)>| {
        if buf.is_empty() {
            return;
        }
        let day_trace = Trace::new(std::mem::take(buf));
        let (svc, svc_hash) = services
            .get_or_insert_with(|| {
                let map = resolve_services(&day_trace, &cfg.cfg.service);
                let hash = crate::cache::fnv1a64(&map.to_bytes());
                (Arc::new(map), hash)
            })
            .clone();
        let day_key = {
            let mut h = KeyHasher::new();
            h.write_str("corpus")
                .write_str(&fingerprint)
                .write_u64(svc_hash)
                .write_u64(day)
                .write_u64(hash_packets(day_trace.day_slice(day)));
            h.finish()
        };
        let corpus = cache
            .as_ref()
            .and_then(|c| c.load("corpus", day_key))
            .and_then(|raw| match corpus_from_bytes(&raw[..]) {
                Ok(corpus) => Some(corpus),
                Err(e) => {
                    shared.fault("corrupt cached corpus shard", &e);
                    None
                }
            })
            .unwrap_or_else(|| {
                let built = build_day_corpus(&day_trace, day, &svc, cfg.cfg.dt);
                if let Some(c) = cache {
                    let _ = c.store("corpus", day_key, &corpus_to_bytes(&built));
                }
                built
            });
        let mut mirai = HashSet::new();
        let mut svc_counts: HashMap<Ipv4, HashMap<ServiceId, u64>> = HashMap::new();
        for p in day_trace.packets() {
            if p.fingerprint == darkvec_types::Fingerprint::Mirai {
                mirai.insert(p.src);
            }
            *svc_counts
                .entry(p.src)
                .or_default()
                .entry(svc.service_of(p.port_key()))
                .or_insert(0) += 1;
        }
        shards.push(Arc::new(DayShard {
            day,
            day_key,
            corpus,
            mirai,
            svc_counts,
        }));
        shared.days.fetch_add(1, Ordering::Relaxed);
        darkvec_obs::metrics::counter("serve.days").add(1);
        darkvec_obs::debug!("serve: day {day} complete ({} shards)", shards.len());
    };

    let schedule = |shards: &[Arc<DayShard>],
                    services: &Option<(Arc<ServiceMap>, u64)>,
                    window_days: u64,
                    last: &mut Option<(u64, u64)>| {
        let take = (window_days as usize).min(shards.len());
        if take == 0 {
            return;
        }
        let Some((svc, svc_hash)) = services.clone() else {
            return;
        };
        let window: Vec<Arc<DayShard>> = shards[shards.len() - take..].to_vec();
        let bounds = (window[0].day, window[take - 1].day);
        if *last == Some(bounds) {
            return;
        }
        *last = Some(bounds);
        let job = TrainJob {
            start_day: bounds.0,
            end_day: bounds.1,
            shards: window,
            services: svc,
            services_hash: svc_hash,
        };
        *shared.job_lock() = Some(job);
        shared.job_ready.notify_all();
        darkvec_obs::metrics::counter("serve.retrain_requests").add(1);
    };

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok(batch) => {
                let started = Instant::now();
                shared
                    .packets
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                ingested.add(batch.len() as u64);
                for p in batch {
                    let day = p.ts.day();
                    match current_day {
                        None => current_day = Some(day),
                        Some(cur) if day > cur => {
                            finalize_day(cur, &mut day_buf, &mut shards, &mut services);
                            let completed = shards.len() as u64;
                            let w = cfg.cfg.window;
                            if completed >= w.days && (completed - w.days).is_multiple_of(w.stride)
                            {
                                schedule(&shards, &services, w.days, &mut last_scheduled);
                            }
                            current_day = Some(day);
                        }
                        Some(cur) if day < cur => {
                            shared.fault(
                                "out-of-order packet dropped",
                                &format!("day {day} after day {cur} began"),
                            );
                            continue;
                        }
                        Some(_) => {}
                    }
                    day_buf.push(p);
                }
                ingest_ns.record_duration(started.elapsed());
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // End of stream: the partial day becomes a final shard and
                // the trailing window gets one last train.
                if let Some(day) = current_day {
                    finalize_day(day, &mut day_buf, &mut shards, &mut services);
                }
                schedule(&shards, &services, cfg.cfg.window.days, &mut last_scheduled);
                shared.stream_done.store(true, Ordering::SeqCst);
                darkvec_obs::info!(
                    "serve: stream ended after {} packets / {} days",
                    shared.packets.load(Ordering::Relaxed),
                    shards.len()
                );
                return;
            }
        }
    }
}

/// The trainer thread: consumes the latest scheduled window, trains
/// (cache-assisted, warm-started), and swaps the serving model.
fn trainer_loop(shared: &Shared, cache: &Option<ArtifactCache>) {
    let cfg = &shared.cfg;
    let fingerprint = cfg.cfg.fingerprint();
    let config_hash = cfg.cfg.fingerprint_hash();
    let mut train_cfg = cfg.cfg.w2v.clone();
    train_cfg.min_count = cfg.cfg.min_packets.max(cfg.cfg.w2v.min_count);
    train_cfg.threads = cfg.threads;
    let mut prior: Option<(u64, TrainedModel)> = None;
    let mut version = 0u64;
    // Cluster lineage across retrains is trainer-local state: windows
    // arrive strictly in order here, which is the tracker's contract.
    let mut lineage = LineageTracker::new(LineageConfig::default());

    loop {
        let job = {
            let mut slot = shared.job_lock();
            loop {
                if let Some(job) = slot.take() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (next, _) = shared
                    .job_ready
                    .wait_timeout(slot, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                slot = next;
            }
        };
        let Some(job) = job else { return };
        shared.training.store(true, Ordering::SeqCst);
        let started = Instant::now();

        // Window corpus + label/centroid material from the shards. The
        // corpus concatenation and vocabulary counting fan out across
        // `shard_threads` (bit-identical to a serial merge).
        let window: Vec<&[Vec<Ipv4>]> = job.shards.iter().map(|s| s.corpus.as_slice()).collect();
        let merged = crate::shard::merge_window(&window, cfg.shard_threads);
        let corpus = &merged.corpus;
        let mut mirai: HashSet<Ipv4> = HashSet::new();
        let mut svc_counts: HashMap<Ipv4, HashMap<ServiceId, u64>> = HashMap::new();
        for shard in &job.shards {
            // lint: nondeterministic-ok(set union — element insertion order cannot affect membership)
            mirai.extend(shard.mirai.iter().copied());
            // lint: nondeterministic-ok(integer sums into a map are commutative; consumers sort before any order-sensitive use)
            for (ip, per_svc) in &shard.svc_counts {
                let into = svc_counts.entry(*ip).or_default();
                // lint: nondeterministic-ok(integer sums into a map are commutative)
                for (&svc, &n) in per_svc {
                    *into.entry(svc).or_insert(0) += n;
                }
            }
        }
        // Model key: chained exactly like the incremental runner, so a
        // serve daemon resumes from artifacts a batch run produced.
        // Holding the warm-start prior as one `Option` binding (instead
        // of a `warm` flag plus `prior.expect(..)`) keeps this path
        // panic-free: there is no "warm implies prior" invariant to
        // assert, the borrow *is* the invariant.
        let warm_prior = if cfg.warm_epochs > 0 {
            prior.as_ref()
        } else {
            None
        };
        let warm = warm_prior.is_some();
        let model_key = {
            let mut h = KeyHasher::new();
            h.write_str("model")
                .write_str(&fingerprint)
                .write_u64(job.services_hash);
            for shard in &job.shards {
                h.write_u64(shard.day_key);
            }
            if let Some((prior_key, _)) = warm_prior {
                h.write_str("warm")
                    .write_u64(cfg.warm_epochs as u64)
                    .write_u64(*prior_key);
            } else {
                h.write_str("cold");
            }
            h.finish()
        };

        let cached = cache
            .as_ref()
            .and_then(|c| c.load("model", model_key))
            .and_then(|raw| match TrainedModel::from_bytes(&raw[..]) {
                Ok(m) => Some(m),
                Err(e) => {
                    shared.fault("corrupt cached model artifact", &e);
                    None
                }
            });
        let from_cache = cached.is_some();
        let trained = cached.unwrap_or_else(|| {
            let stats = corpus_stats(corpus);
            let skipgrams = count_skipgrams(corpus, cfg.cfg.w2v.window);
            let vocab = merged.vocab(train_cfg.min_count);
            let (embedding, train_stats) = if let Some((_, prior_model)) = warm_prior {
                let mut warm_cfg = train_cfg.clone();
                warm_cfg.epochs = cfg.warm_epochs;
                train_prepared(corpus, &warm_cfg, vocab, Some(&prior_model.embedding))
            } else {
                train_prepared(corpus, &train_cfg, vocab, None)
            };
            let model = TrainedModel {
                embedding,
                services: (*job.services).clone(),
                corpus: stats,
                skipgrams,
                train: train_stats,
                config_hash,
            };
            if let Some(c) = cache {
                let _ = c.store("model", model_key, &model.to_bytes());
            }
            model
        });

        if trained.embedding.is_empty() {
            shared.fault(
                "retrain produced an empty embedding",
                &format!("window {}..={}", job.start_day, job.end_day),
            );
            shared.training.store(false, Ordering::SeqCst);
            continue;
        }

        // Build the complete serving model before it becomes visible.
        version += 1;
        let n = trained.embedding.len();
        let dim = trained.embedding.dim();
        let normed = Arc::new(Matrix::new(trained.embedding.vectors(), n, dim).normalized());
        let index = cfg.backend.index_shared(Arc::clone(&normed), cfg.threads);
        let labels: Vec<Label> = (0..n as u32)
            .map(|id| {
                if mirai.contains(trained.embedding.vocab().word(id)) {
                    LABEL_MIRAI
                } else {
                    LABEL_UNKNOWN
                }
            })
            .collect();
        let centroids = build_centroids(&trained, &normed, &svc_counts);
        let checksum = checksum_of(&normed, &labels);
        let serving = Arc::new(ServingModel {
            version,
            checksum,
            window: (job.start_day, job.end_day),
            model: trained,
            normed,
            index,
            labels,
            class_names: vec!["unknown".to_string(), "mirai".to_string()],
            centroids,
        });

        // The swap: history first, then one atomic pointer store.
        shared.swaps_lock().push(SwapRecord {
            version,
            checksum,
            vocab: n,
            window: (job.start_day, job.end_day),
        });
        *shared.model_write() = Some(Arc::clone(&serving));
        shared.swap_count.fetch_add(1, Ordering::Relaxed);
        shared.retrains.fetch_add(1, Ordering::Relaxed);
        darkvec_obs::metrics::counter("serve.swaps").add(1);
        darkvec_obs::metrics::counter("serve.retrains").add(1);
        darkvec_obs::metrics::gauge("serve.model_version").set(version as f64);
        darkvec_obs::metrics::gauge("serve.vocab").set(n as f64);
        darkvec_obs::metrics::histogram("serve.retrain_ns").record_duration(started.elapsed());
        darkvec_obs::info!(
            "serve: model v{version} live — window {}..={}, vocab {}, {} ({:.2}s)",
            job.start_day,
            job.end_day,
            n,
            if from_cache {
                "cached"
            } else if warm {
                "warm-trained"
            } else {
                "cold-trained"
            },
            started.elapsed().as_secs_f64()
        );
        // Lineage: match this window's clusters against the tracked
        // lineages and publish any novelty alerts before the daemon
        // reports itself idle again.
        lineage_step(shared, &mut lineage, &job, &serving, &mirai, &svc_counts);
        let prior_model = serving.model.clone();
        prior = Some((model_key, prior_model));
        shared.training.store(false, Ordering::SeqCst);
        darkvec_obs::metrics::record_sample();
    }
}

/// Post-swap lineage step: clusters the freshly-swapped embedding,
/// feeds this window to the tracker, and publishes any novelty alerts
/// through the shared alert buffer (served by [`Request::Alerts`]).
///
/// Evidence is what the daemon actually has: top *services* by packet
/// mass (the ingest shards keep per-sender service counts, not raw
/// packets) and a presence-based regularity call — a cluster whose
/// members appear on almost every window day is "daily", anything
/// sparser "irregular".
fn lineage_step(
    shared: &Shared,
    lineage: &mut LineageTracker,
    job: &TrainJob,
    serving: &ServingModel,
    mirai: &HashSet<Ipv4>,
    svc_counts: &HashMap<Ipv4, HashMap<ServiceId, u64>>,
) {
    let started = Instant::now();
    let cfg = &shared.cfg;
    let clustering = cluster_embedding(
        &serving.model.embedding,
        &ClusterConfig {
            k: 3,
            seed: cfg.cfg.w2v.seed,
            threads: cfg.threads,
            backend: cfg.backend.clone(),
        },
    );
    let dim = serving.normed.dim();
    let mut members: Vec<Vec<Ipv4>> = vec![Vec::new(); clustering.clusters];
    let mut centroids = vec![vec![0.0f32; dim]; clustering.clusters];
    for (row, &c) in clustering.assignment.iter().enumerate() {
        // lint: cast-ok(row indexes the embedding vocabulary, which is bounded well below u32::MAX)
        members[c as usize].push(*serving.model.embedding.vocab().word(row as u32));
        for (s, &x) in centroids[c as usize]
            .iter_mut()
            .zip(serving.normed.row(row))
        {
            *s += x;
        }
    }
    let names = job.services.names();
    let observations: Vec<ClusterObservation> = members
        .iter()
        .enumerate()
        .map(|(c, group)| {
            // Dominant label from the fingerprint layer: the only ground
            // truth the daemon has is the Mirai bit.
            let hits = group.iter().filter(|ip| mirai.contains(ip)).count();
            let share = hits as f64 / group.len().max(1) as f64;
            let label = (hits > 0).then(|| ("mirai".to_string(), share));
            // Top services by packet mass across the window.
            let mut per_svc: HashMap<ServiceId, u64> = HashMap::new();
            // lint: nondeterministic-ok(integer sums into a map are commutative; sorted before use below)
            for ip in group {
                if let Some(counts) = svc_counts.get(ip) {
                    for (&svc, &n) in counts {
                        *per_svc.entry(svc).or_insert(0) += n;
                    }
                }
            }
            // lint: nondeterministic-ok(integer sum is commutative)
            let total: u64 = per_svc.values().sum();
            // lint: nondeterministic-ok(collected then fully sorted on the next line)
            let mut ranked: Vec<(ServiceId, u64)> = per_svc.into_iter().collect();
            ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked.truncate(MAX_ALERT_PORTS);
            let top_ports: Vec<(String, f64)> = ranked
                .into_iter()
                .map(|(svc, n)| {
                    let name = names
                        .get(svc)
                        .cloned()
                        .unwrap_or_else(|| format!("svc-{svc}"));
                    (name, n as f64 / total.max(1) as f64)
                })
                .collect();
            // Presence-based regularity over the window's day shards.
            let slots = group.len() * job.shards.len();
            let present: usize = job
                .shards
                .iter()
                .map(|s| {
                    group
                        .iter()
                        .filter(|ip| s.svc_counts.contains_key(ip))
                        .count()
                })
                .sum();
            let regularity = if slots > 0 && present * 5 >= slots * 4 {
                crate::temporal::Regularity::Daily.name()
            } else {
                crate::temporal::Regularity::Irregular.name()
            };
            ClusterObservation {
                // lint: cast-ok(cluster count is bounded by the vocabulary size, far below u32::MAX)
                cluster: c as u32,
                members: group.clone(),
                centroid: centroids[c].clone(),
                label,
                top_ports,
                regularity: regularity.to_string(),
            }
        })
        .collect();

    // Freshness presence: every sender the window's shards saw, even the
    // ones below the clustering activity filter — a sporadic sender that
    // finally clears the filter must not read as a fresh campaign.
    // lint: nondeterministic-ok(keys feed a set-like freshness ledger; insertion order cannot reach any output)
    let present: Vec<Ipv4> = svc_counts.keys().copied().collect();
    let alerts =
        lineage.observe_with_presence((job.start_day, job.end_day), &observations, &present);
    darkvec_obs::metrics::counter("lineage.windows").add(1);
    darkvec_obs::metrics::gauge("lineage.tracked").set(lineage.records().len() as f64);
    darkvec_obs::metrics::histogram("lineage.match_ns").record_duration(started.elapsed());
    if !alerts.is_empty() {
        darkvec_obs::metrics::counter("lineage.novel_alerts").add(alerts.len() as u64);
        for a in &alerts {
            darkvec_obs::warn!(
                "serve: novel cluster — lineage {} window {}..={} size {} ({})",
                a.lineage,
                a.window.0,
                a.window.1,
                a.size,
                a.regularity
            );
        }
        let mut buffered = shared.alerts_lock();
        buffered.extend(alerts.iter().map(|a| {
            AlertInfo {
                lineage: a.lineage,
                window_start: a.window.0,
                window_end: a.window.1,
                // lint: cast-ok(cluster size is bounded by the vocabulary size, far below u32::MAX)
                size: a.size as u32,
                regularity: a.regularity.clone(),
                top_ports: a
                    .top_ports
                    .iter()
                    // lint: cast-ok(shares are in [0, 1]; f32 precision is plenty for the wire)
                    .map(|(p, s)| (p.clone(), *s as f32))
                    .collect(),
            }
        }));
        let len = buffered.len();
        if len > MAX_ALERTS {
            buffered.drain(..len - MAX_ALERTS);
        }
    }
}

/// Per-service centroid query vectors: the packet-count-weighted mean of
/// embedded sender rows, L2-normalised. Services with no embedded mass
/// get an empty vector.
fn build_centroids(
    trained: &TrainedModel,
    normed: &NormalizedMatrix,
    svc_counts: &HashMap<Ipv4, HashMap<ServiceId, u64>>,
) -> Vec<Vec<f32>> {
    let dim = normed.dim();
    let n_services = trained.services.len();
    let mut sums = vec![vec![0.0f64; dim]; n_services];
    let mut mass = vec![0.0f64; n_services];
    // Accumulate in sorted-sender order: HashMap iteration order is
    // seeded per process and float addition is not associative, so
    // summing in map order would make centroid bits — and therefore
    // wire replies and the serve bit-identity gate — vary run to run.
    // (Per-sender service order is free: each `(ip, svc)` pair lands in
    // `sums[svc]` exactly once, so only the sender order reaches a sum.)
    // lint: nondeterministic-ok(collected then sorted by sender on the next line, before any accumulation)
    let mut senders: Vec<(&Ipv4, &HashMap<ServiceId, u64>)> = svc_counts.iter().collect();
    senders.sort_unstable_by_key(|(ip, _)| **ip);
    for (ip, per_svc) in senders {
        let Some(id) = trained.embedding.vocab().id(ip) else {
            continue;
        };
        let row = normed.row(id as usize);
        // lint: nondeterministic-ok(each (ip, svc) pair lands in sums[svc] exactly once; only the outer, sorted sender order reaches a float sum)
        for (&svc, &count) in per_svc {
            if svc >= n_services {
                continue;
            }
            let w = count as f64;
            for (s, &x) in sums[svc].iter_mut().zip(row) {
                *s += w * x as f64;
            }
            mass[svc] += w;
        }
    }
    sums.into_iter()
        .zip(&mass)
        .map(|(sum, &m)| {
            if m == 0.0 {
                return Vec::new();
            }
            let mut v: Vec<f32> = sum.into_iter().map(|x| (x / m) as f32).collect();
            normalize_vec(&mut v);
            v
        })
        .collect()
}

/// The acceptor thread: non-blocking accept with a shutdown poll, one
/// thread per connection.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                darkvec_obs::metrics::counter("serve.connections").add(1);
                darkvec_obs::debug!("serve: connection from {peer}");
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_conn(&shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                shared.fault("accept failed", &e.to_string());
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Reads one frame, tolerating idle time *between* frames but not
/// stalls *inside* one: the socket's read timeout only starts counting
/// once the first byte of a frame has arrived, so a quiet client parks
/// for free while a slow-loris writer times out mid-frame.
fn read_frame_idle(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
) -> Result<Vec<u8>, FrameError> {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(FrameError::Closed);
        }
        // A whole small frame usually lands in the buffer on this one
        // syscall; nothing is consumed until `read_frame` below.
        match reader.fill_buf() {
            Ok([]) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    // From here the socket timeout applies: a read past the buffered
    // bytes that stalls comes back as a `WouldBlock` I/O fault.
    read_frame(reader)
}

/// One connection: a loop of request frames and response frames.
fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let mut reader = BufReader::with_capacity(4096, stream);
    let query_ns = darkvec_obs::metrics::histogram("serve.query_ns");
    loop {
        let payload = match read_frame_idle(shared, &mut reader) {
            Ok(payload) => payload,
            Err(FrameError::Closed) => return,
            Err(FrameError::Oversized(len)) => {
                shared.fault("oversized frame", &format!("length {len}"));
                let reply = encode_response(&Response::Error(format!(
                    "frame length {len} exceeds maximum"
                )));
                let _ = write_frame(reader.get_mut(), &reply);
                return; // cannot resync: the payload was never read
            }
            Err(FrameError::Io(e)) => {
                // Mid-frame disconnect or a slow-loris stall.
                shared.fault("connection fault mid-frame", &e.to_string());
                return;
            }
        };
        let request = match decode_request(&payload) {
            Ok(req) => req,
            Err(e) => {
                shared.fault("malformed request", &e.to_string());
                let reply = encode_response(&Response::Error(format!("bad request: {e}")));
                if write_frame(reader.get_mut(), &reply).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Status => Response::Status(shared.status()),
            Request::Classify { ip, ports, k } => {
                let started = Instant::now();
                shared.queries.fetch_add(1, Ordering::Relaxed);
                darkvec_obs::metrics::counter("serve.queries").add(1);
                let model = shared.model_read().clone();
                let response = match model {
                    None => Response::Error("no model trained yet".to_string()),
                    Some(m) => {
                        let k = if k == 0 { shared.cfg.k } else { k as usize };
                        match m.classify(ip, &ports, k) {
                            Ok(reply) => Response::Classify(reply),
                            Err(e) => Response::Error(e),
                        }
                    }
                };
                query_ns.record_duration(started.elapsed());
                response
            }
            Request::Alerts => Response::Alerts(shared.alerts_lock().clone()),
            Request::Shutdown => Response::ShutdownAck,
        };
        let shutting_down = matches!(response, Response::ShutdownAck);
        if write_frame(reader.get_mut(), &encode_response(&response)).is_err() {
            shared.fault("reply write failed", "peer went away");
            return;
        }
        if shutting_down {
            darkvec_obs::info!("serve: shutdown requested over the wire");
            shared.begin_shutdown();
            return;
        }
    }
}

/// A small synchronous client for the serve protocol, used by the CLI
/// `query` command, the benchmarks and the integration tests.
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::with_capacity(4096, stream.try_clone()?);
        Ok(Client { stream, reader })
    }

    /// One request/response round trip.
    pub fn call(&mut self, request: &Request) -> Result<Response, String> {
        write_frame(&mut self.stream, &encode_request(request))
            .map_err(|e| format!("send: {e}"))?;
        let payload = read_frame(&mut self.reader).map_err(|e| format!("recv: {e}"))?;
        crate::protocol::decode_response(&payload).map_err(|e| format!("decode: {e}"))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("unexpected reply to ping: {other:?}")),
        }
    }

    /// Daemon status.
    pub fn status(&mut self) -> Result<StatusReply, String> {
        match self.call(&Request::Status)? {
            Response::Status(s) => Ok(s),
            other => Err(format!("unexpected reply to status: {other:?}")),
        }
    }

    /// Classifies a sender. `k = 0` uses the daemon's default. A
    /// protocol-level error reply comes back as `Ok(Err(msg))` so
    /// callers can tell transport faults from refusals.
    pub fn classify(
        &mut self,
        ip: Ipv4,
        ports: &[(u16, Protocol)],
        k: u16,
    ) -> Result<Result<ClassifyReply, String>, String> {
        match self.call(&Request::Classify {
            ip,
            ports: ports.to_vec(),
            k,
        })? {
            Response::Classify(reply) => Ok(Ok(reply)),
            Response::Error(msg) => Ok(Err(msg)),
            other => Err(format!("unexpected reply to classify: {other:?}")),
        }
    }

    /// The daemon's retained novelty alerts (newest last).
    pub fn alerts(&mut self) -> Result<Vec<AlertInfo>, String> {
        match self.call(&Request::Alerts)? {
            Response::Alerts(alerts) => Ok(alerts),
            other => Err(format!("unexpected reply to alerts: {other:?}")),
        }
    }

    /// Asks the daemon to shut down.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(format!("unexpected reply to shutdown: {other:?}")),
        }
    }
}
