//! Timestamps and the fixed-ΔT windowing DarkVec uses to cut the packet
//! stream into sentences (§5.2).
//!
//! Timestamps are seconds since the start of the capture. The simulator and
//! all experiments use a 30-day horizon like the paper, so a `u64` of
//! seconds is more than enough resolution: darknet sequence construction
//! only needs ordering and windowing, not sub-second precision.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One minute, in seconds.
pub const MINUTE: u64 = 60;
/// One hour, in seconds. The paper's default sequence window ΔT (§5.2).
pub const HOUR: u64 = 3_600;
/// One day, in seconds.
pub const DAY: u64 = 86_400;

/// Seconds since the start of the observation period.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The capture origin (t = 0).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp from whole days, hours, minutes and seconds.
    pub const fn from_dhms(days: u64, hours: u64, minutes: u64, seconds: u64) -> Self {
        Timestamp(days * DAY + hours * HOUR + minutes * MINUTE + seconds)
    }

    /// Zero-based day index of this instant.
    pub const fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Zero-based hour-of-capture index.
    pub const fn hour(self) -> u64 {
        self.0 / HOUR
    }

    /// Seconds into the current day.
    pub const fn second_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// Index of the ΔT window containing this instant.
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    pub fn window(self, dt: u64) -> u64 {
        assert!(dt > 0, "window length must be positive");
        self.0 / dt
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let rem = self.second_of_day();
        write!(
            f,
            "d{:02} {:02}:{:02}:{:02}",
            d,
            rem / HOUR,
            (rem % HOUR) / MINUTE,
            rem % MINUTE
        )
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Timestamp({self})")
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl AddAssign<u64> for Timestamp {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0 - rhs.0
    }
}

/// Iterator over consecutive `[start, start+dt)` half-open windows covering
/// `[t0, tf)` — the paper's non-overlapping observation windows
/// `W(t0 + i·ΔT)`.
#[derive(Clone, Debug)]
pub struct WindowIter {
    next_start: u64,
    end: u64,
    dt: u64,
}

impl WindowIter {
    /// Windows of length `dt` covering `[t0, tf)`. The last window is
    /// truncated at `tf` (the paper's N = ⌈(tf − t0)/ΔT⌉ windows).
    ///
    /// # Panics
    /// Panics if `dt` is zero.
    pub fn new(t0: Timestamp, tf: Timestamp, dt: u64) -> Self {
        assert!(dt > 0, "window length must be positive");
        WindowIter {
            next_start: t0.0,
            end: tf.0.max(t0.0),
            dt,
        }
    }
}

impl Iterator for WindowIter {
    /// `(start, end)` of each half-open window.
    type Item = (Timestamp, Timestamp);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_start >= self.end {
            return None;
        }
        let start = self.next_start;
        let end = (start + self.dt).min(self.end);
        self.next_start = start + self.dt;
        Some((Timestamp(start), Timestamp(end)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dhms_construction() {
        assert_eq!(
            Timestamp::from_dhms(1, 2, 3, 4).0,
            DAY + 2 * HOUR + 3 * MINUTE + 4
        );
    }

    #[test]
    fn day_and_hour_indices() {
        let t = Timestamp::from_dhms(3, 5, 0, 0);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour(), 3 * 24 + 5);
        assert_eq!(t.second_of_day(), 5 * HOUR);
    }

    #[test]
    fn window_index() {
        assert_eq!(Timestamp(0).window(HOUR), 0);
        assert_eq!(Timestamp(HOUR - 1).window(HOUR), 0);
        assert_eq!(Timestamp(HOUR).window(HOUR), 1);
    }

    #[test]
    fn windows_cover_interval_exactly() {
        let wins: Vec<_> = WindowIter::new(Timestamp(0), Timestamp(10_000), HOUR).collect();
        assert_eq!(wins.len(), 3); // ceil(10000/3600)
        assert_eq!(wins[0], (Timestamp(0), Timestamp(HOUR)));
        assert_eq!(wins[2], (Timestamp(2 * HOUR), Timestamp(10_000)));
        // Windows tile the interval with no gaps or overlaps.
        for pair in wins.windows(2) {
            assert_eq!(pair[0].1 .0.min(pair[1].0 .0), pair[1].0 .0);
        }
    }

    #[test]
    fn empty_interval_yields_no_windows() {
        assert_eq!(WindowIter::new(Timestamp(5), Timestamp(5), HOUR).count(), 0);
        // Degenerate tf < t0 is treated as empty, not an infinite loop.
        assert_eq!(WindowIter::new(Timestamp(9), Timestamp(2), HOUR).count(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(Timestamp::from_dhms(2, 3, 4, 5).to_string(), "d02 03:04:05");
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp(100);
        assert_eq!((t + 20).0, 120);
        assert_eq!(Timestamp(120) - t, 20);
        let mut u = t;
        u += 5;
        assert_eq!(u.0, 105);
    }
}
