//! Global metrics registry: counters, gauges, and log₂ histograms.
//!
//! Handles are `&'static` and lock-free to bump, so hot loops (Hogwild
//! workers, per-packet filters) can update them without contention on
//! anything but the cache line of the atomic itself. Registration
//! (first use of a name) takes a mutex; steady-state lookups are
//! read-mostly and callers are expected to cache the handle:
//!
//! ```
//! use darkvec_obs::metrics;
//! let tokens = metrics::counter("corpus.tokens");
//! for _ in 0..1000 {
//!     tokens.add(1);
//! }
//! assert!(tokens.get() >= 1000);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating point metric (rates, alphas, ratios).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of log₂ buckets: values `0, 1, 2, 4, …, 2^62, overflow`.
const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram over `u64` samples with log₂ buckets.
///
/// Bucket `0` holds the sample `0`; bucket `i ≥ 1` holds samples in
/// `[2^(i-1), 2^i)`. Designed for latencies in µs and batch sizes, where
/// order of magnitude is the interesting resolution.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }
}

/// The bucket index a sample falls into.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        // ilog2 is 0..=63, so the index is 1..=64; clamp 2^63.. into the
        // last bucket.
        ((value.ilog2() as usize) + 1).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive lower bound of bucket `i` (0, 1, 2, 4, …).
pub fn bucket_floor(index: usize) -> u64 {
    if index == 0 {
        0
    } else {
        1u64 << (index - 1)
    }
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(bucket_floor, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_floor(i), n))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryInner::default()))
}

/// The counter registered under `name`, creating it on first use.
///
/// Metric objects are leaked intentionally: the registry lives for the
/// whole process and handles must be `&'static` to be cheap to share.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::default());
    reg.counters.insert(name.to_string(), c);
    c
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(g) = reg.gauges.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::default());
    reg.gauges.insert(name.to_string(), g);
    g
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(h) = reg.histograms.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::default());
    reg.histograms.insert(name.to_string(), h);
    h
}

/// A histogram snapshot: `(count, sum, nonzero (floor, count) buckets)`.
pub type HistogramSnapshot = (u64, u64, Vec<(u64, u64)>);

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshots every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), (h.count(), h.sum(), h.nonzero_buckets())))
            .collect(),
    }
}

/// Zeroes every registered metric (names stay registered). Used between
/// independent runs sharing one process, e.g. consecutive experiments.
pub fn reset() {
    let reg = registry().lock().expect("metrics registry poisoned");
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(
                bucket_index(bucket_floor(i)),
                i,
                "floor of bucket {i} maps back"
            );
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 3, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (64, 1)]);
    }

    #[test]
    fn registry_returns_same_handle() {
        let a = counter("test.same_handle");
        let b = counter("test.same_handle");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = gauge("test.gauge_rt");
        g.set(0.0375);
        assert_eq!(g.get(), 0.0375);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn concurrent_counter_updates_are_lossless() {
        let c = counter("test.concurrent");
        let start = c.get();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - start, 80_000);
    }

    #[test]
    fn concurrent_histogram_updates_are_lossless() {
        let h = histogram("test.concurrent_hist");
        let start = h.count();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..5_000 {
                        h.record(t * 7 + i % 13);
                    }
                });
            }
        });
        assert_eq!(h.count() - start, 20_000);
    }

    #[test]
    fn snapshot_contains_registered_names() {
        counter("test.snap_counter").add(3);
        gauge("test.snap_gauge").set(2.5);
        histogram("test.snap_hist").record(9);
        let snap = snapshot();
        assert!(snap.counters["test.snap_counter"] >= 3);
        assert_eq!(snap.gauges["test.snap_gauge"], 2.5);
        let (count, sum, _) = &snap.histograms["test.snap_hist"];
        assert!(*count >= 1 && *sum >= 9);
    }
}
