//! The end-to-end DarkVec pipeline: trace → activity filter → services →
//! corpus → Word2Vec embedding (Figure 4, left half).

use crate::config::{DarkVecConfig, ServiceDef};
use crate::corpus::{build_corpus, corpus_stats, CorpusStats};
use crate::services::ServiceMap;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use darkvec_types::{Ipv4, Trace};
use darkvec_w2v::{count_skipgrams, train, Embedding, TrainStats};
use std::path::Path;

/// Magic of the full-model file format (embedding + service map + config
/// hash). Distinct from the bare embedding's `DKVE` so loaders can tell
/// the two apart by peeking at the first four bytes.
pub const MODEL_MAGIC: &[u8; 4] = b"DKVM";
const MODEL_VERSION: u8 = 1;

/// A trained DarkVec model.
#[derive(Clone, Debug)]
pub struct TrainedModel {
    /// The sender embedding (one vector per active sender).
    pub embedding: Embedding<Ipv4>,
    /// The service map used (needed to embed the same way later).
    pub services: ServiceMap,
    /// Corpus statistics (sentences, tokens).
    pub corpus: CorpusStats,
    /// Skip-gram count at the configured context window (Table 3's metric).
    pub skipgrams: u64,
    /// Word2Vec training statistics.
    pub train: TrainStats,
    /// [`DarkVecConfig::fingerprint_hash`] of the training configuration.
    /// Loading a model under a different configuration is rejected: the
    /// embedding would silently disagree with the corpus/service settings
    /// the caller is about to apply to new traffic.
    pub config_hash: u64,
}

impl TrainedModel {
    /// Serialises the *full* model: embedding, service map, corpus and
    /// training statistics, and the config hash. This is what `save` must
    /// persist — a bare embedding cannot be applied to new traffic because
    /// the service map that shaped its sentences would be lost.
    ///
    /// Wall-clock (`train.elapsed`) is deliberately written as zero: it is
    /// a property of a *run*, not of the artifact, and zeroing it keeps
    /// same-seed artifacts byte-identical for the cache determinism
    /// guarantee.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(MODEL_MAGIC);
        buf.put_u8(MODEL_VERSION);
        buf.put_u64_le(self.config_hash);
        buf.put_u64_le(self.skipgrams);
        buf.put_u64_le(self.corpus.sentences as u64);
        buf.put_u64_le(self.corpus.tokens);
        buf.put_u64_le(self.corpus.max_len as u64);
        buf.put_u64_le(self.train.vocab_size as u64);
        buf.put_u64_le(self.train.corpus_tokens);
        buf.put_u64_le(self.train.pairs_trained);
        let services = self.services.to_bytes();
        buf.put_u32_le(services.len() as u32);
        buf.put_slice(&services);
        let embedding = self.embedding.to_bytes();
        buf.put_u32_le(embedding.len() as u32);
        buf.put_slice(&embedding);
        buf.freeze()
    }

    /// Inverse of [`TrainedModel::to_bytes`]; fails cleanly on truncated
    /// or corrupt input.
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, String> {
        if buf.remaining() < 4 + 1 + 8 * 8 {
            return Err("truncated model: missing header".to_string());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MODEL_MAGIC {
            return Err("not a DKVM model file".to_string());
        }
        let version = buf.get_u8();
        if version != MODEL_VERSION {
            return Err(format!("unsupported DKVM version {version}"));
        }
        let config_hash = buf.get_u64_le();
        let skipgrams = buf.get_u64_le();
        let sentences = buf.get_u64_le() as usize;
        let tokens = buf.get_u64_le();
        let max_len = buf.get_u64_le() as usize;
        let vocab_size = buf.get_u64_le() as usize;
        let corpus_tokens = buf.get_u64_le();
        let pairs_trained = buf.get_u64_le();

        let section = |what: &str, buf: &mut dyn Buf| -> Result<Vec<u8>, String> {
            if buf.remaining() < 4 {
                return Err(format!("truncated model: missing {what} length"));
            }
            let len = buf.get_u32_le() as usize;
            if buf.remaining() < len {
                return Err(format!("truncated model: {what} overruns buffer"));
            }
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            Ok(raw)
        };
        let services_raw = section("service map", &mut buf)?;
        let embedding_raw = section("embedding", &mut buf)?;
        let services = ServiceMap::from_bytes(&services_raw[..])?;
        let embedding = Embedding::<Ipv4>::from_bytes(&embedding_raw[..])?;
        Ok(TrainedModel {
            embedding,
            services,
            corpus: CorpusStats {
                sentences,
                tokens,
                max_len,
            },
            skipgrams,
            train: TrainStats {
                vocab_size,
                corpus_tokens,
                pairs_trained,
                elapsed: std::time::Duration::ZERO,
            },
            config_hash,
        })
    }

    /// Writes the full model to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads a full model from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        TrainedModel::from_bytes(&bytes[..])
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Reads a full model and verifies it was trained under `cfg`,
    /// rejecting the load on a fingerprint mismatch.
    pub fn load_for<P: AsRef<Path>>(path: P, cfg: &DarkVecConfig) -> std::io::Result<Self> {
        let model = TrainedModel::load(path)?;
        let want = cfg.fingerprint_hash();
        if model.config_hash != want {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "model was trained under config {:016x}, current config is {want:016x}",
                    model.config_hash
                ),
            ));
        }
        Ok(model)
    }
}

/// Resolves the configured service definition against (filtered) traffic.
pub fn resolve_services(trace: &Trace, def: &ServiceDef) -> ServiceMap {
    match def {
        ServiceDef::Single => ServiceMap::single(),
        ServiceDef::Auto(n) => ServiceMap::auto(&trace.port_counter(), *n),
        ServiceDef::DomainKnowledge => ServiceMap::domain_knowledge(),
    }
}

/// Runs the full pipeline on a raw trace.
///
/// Every stage is wrapped in a [`darkvec_obs`] span (`filter`,
/// `services`, `corpus`, `skipgrams`, `train` under a `pipeline` root)
/// and feeds the global metrics registry, so a run manifest written
/// afterwards carries the full stage-timing tree.
pub fn run(trace: &Trace, cfg: &DarkVecConfig) -> TrainedModel {
    let _pipeline = darkvec_obs::span!("pipeline");
    let t0 = std::time::Instant::now();

    let filtered = {
        let _s = darkvec_obs::span!("filter");
        trace.filter_active(cfg.min_packets)
    };
    let filter_secs = t0.elapsed().as_secs_f64().max(1e-9);
    darkvec_obs::metrics::counter("pipeline.packets_in").add(trace.len() as u64);
    darkvec_obs::metrics::counter("pipeline.packets_kept").add(filtered.len() as u64);
    darkvec_obs::metrics::gauge("pipeline.packets_per_sec").set(trace.len() as f64 / filter_secs);
    darkvec_obs::info!(
        "activity filter kept {}/{} packets (min_packets = {})",
        filtered.len(),
        trace.len(),
        cfg.min_packets
    );

    let services = {
        let _s = darkvec_obs::span!("services");
        resolve_services(&filtered, &cfg.service)
    };
    darkvec_obs::metrics::gauge("pipeline.services").set(services.len() as f64);

    let corpus_start = std::time::Instant::now();
    let corpus = {
        let _s = darkvec_obs::span!("corpus");
        build_corpus(&filtered, &services, cfg.dt)
    };
    let stats = corpus_stats(&corpus);
    darkvec_obs::metrics::counter("pipeline.corpus_sentences").add(stats.sentences as u64);
    darkvec_obs::metrics::counter("pipeline.corpus_tokens").add(stats.tokens);
    darkvec_obs::metrics::gauge("pipeline.tokens_per_sec")
        .set(stats.tokens as f64 / corpus_start.elapsed().as_secs_f64().max(1e-9));
    let lengths = darkvec_obs::metrics::histogram("pipeline.sentence_len");
    for sentence in &corpus {
        lengths.record(sentence.len() as u64);
    }
    darkvec_obs::info!(
        "corpus: {} sentences, {} tokens ({} services, dt = {}s)",
        stats.sentences,
        stats.tokens,
        services.len(),
        cfg.dt
    );

    let skipgrams = {
        let _s = darkvec_obs::span!("skipgrams");
        count_skipgrams(&corpus, cfg.w2v.window)
    };
    darkvec_obs::metrics::counter("pipeline.skipgrams").add(skipgrams);

    let (embedding, train_stats) = {
        let _s = darkvec_obs::span!("train");
        train(&corpus, &cfg.w2v)
    };
    darkvec_obs::info!(
        "trained {} vectors ({} pairs) in {:.2?}",
        embedding.len(),
        train_stats.pairs_trained,
        train_stats.elapsed
    );
    TrainedModel {
        embedding,
        services,
        corpus: stats,
        skipgrams,
        train: train_stats,
        config_hash: cfg.fingerprint_hash(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkvec_gen::{simulate, SimConfig};

    fn small_model(seed: u64) -> TrainedModel {
        let out = simulate(&SimConfig::tiny(seed));
        run(&out.trace, &DarkVecConfig::test_size(seed))
    }

    #[test]
    fn pipeline_embeds_active_senders_only() {
        let out = simulate(&SimConfig::tiny(21));
        let cfg = DarkVecConfig::test_size(21);
        let model = run(&out.trace, &cfg);
        let active = out.trace.active_senders(cfg.min_packets);
        assert_eq!(model.embedding.len(), active.len());
        for ip in active.iter().take(50) {
            assert!(
                model.embedding.get(ip).is_some(),
                "{ip} missing from embedding"
            );
        }
    }

    #[test]
    fn corpus_tokens_equal_filtered_packets() {
        let out = simulate(&SimConfig::tiny(22));
        let cfg = DarkVecConfig::test_size(22);
        let model = run(&out.trace, &cfg);
        assert_eq!(
            model.corpus.tokens as usize,
            out.trace.filter_active(10).len()
        );
        assert!(model.skipgrams > 0);
        assert!(model.train.pairs_trained > 0);
    }

    #[test]
    fn single_service_yields_fewer_sentences() {
        let out = simulate(&SimConfig::tiny(23));
        let single = run(
            &out.trace,
            &DarkVecConfig {
                service: ServiceDef::Single,
                ..DarkVecConfig::test_size(23)
            },
        );
        let domain = run(&out.trace, &DarkVecConfig::test_size(23));
        assert!(single.corpus.sentences < domain.corpus.sentences);
        assert_eq!(single.corpus.tokens, domain.corpus.tokens);
        assert_eq!(single.services.len(), 1);
        assert_eq!(domain.services.len(), 16);
    }

    #[test]
    fn auto_services_resolve_from_traffic() {
        let out = simulate(&SimConfig::tiny(24));
        let model = run(
            &out.trace,
            &DarkVecConfig {
                service: ServiceDef::Auto(10),
                ..DarkVecConfig::test_size(24)
            },
        );
        assert_eq!(model.services.len(), 11);
        // Telnet floods the simulated darknet, so 23/tcp must be a top port.
        assert!(model.services.names().iter().any(|n| n == "23/tcp"));
    }

    #[test]
    fn pipeline_is_deterministic_single_thread() {
        let out = simulate(&SimConfig::tiny(25));
        let mut cfg = DarkVecConfig::test_size(25);
        cfg.w2v.threads = 1;
        let a = run(&out.trace, &cfg);
        let b = run(&out.trace, &cfg);
        assert_eq!(a.embedding.vectors(), b.embedding.vectors());
        assert_eq!(a.skipgrams, b.skipgrams);
    }

    /// A hand-built tiny model: fast to construct, exercises every
    /// serialised field.
    fn tiny_model() -> TrainedModel {
        use darkvec_w2v::Vocab;
        let words = [Ipv4::new(10, 0, 0, 1), Ipv4::new(10, 0, 0, 2)];
        let corpus = [vec![words[0], words[1], words[0]]];
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter()), 1);
        let vectors = vec![0.5, -1.0, 0.25, 2.0];
        TrainedModel {
            embedding: Embedding::from_parts(vocab, vectors, 2),
            services: ServiceMap::domain_knowledge(),
            corpus: CorpusStats {
                sentences: 1,
                tokens: 3,
                max_len: 3,
            },
            skipgrams: 4,
            train: TrainStats {
                vocab_size: 2,
                corpus_tokens: 3,
                pairs_trained: 4,
                elapsed: std::time::Duration::ZERO,
            },
            config_hash: DarkVecConfig::default().fingerprint_hash(),
        }
    }

    #[test]
    fn model_bytes_round_trip_everything() {
        let model = tiny_model();
        let back = TrainedModel::from_bytes(&model.to_bytes()[..]).unwrap();
        assert_eq!(back.embedding.vectors(), model.embedding.vectors());
        assert_eq!(back.embedding.dim(), model.embedding.dim());
        assert_eq!(back.services, model.services);
        assert_eq!(back.corpus, model.corpus);
        assert_eq!(back.skipgrams, model.skipgrams);
        assert_eq!(back.train.vocab_size, model.train.vocab_size);
        assert_eq!(back.train.corpus_tokens, model.train.corpus_tokens);
        assert_eq!(back.train.pairs_trained, model.train.pairs_trained);
        assert_eq!(back.config_hash, model.config_hash);
        // Canonical: re-serialising the loaded model gives the same bytes.
        assert_eq!(back.to_bytes(), model.to_bytes());
    }

    #[test]
    fn model_save_load_for_checks_config_hash() {
        let model = tiny_model();
        let path =
            std::env::temp_dir().join(format!("darkvec-model-test-{}.dkvm", std::process::id()));
        model.save(&path).unwrap();
        assert!(TrainedModel::load_for(&path, &DarkVecConfig::default()).is_ok());
        let mut other = DarkVecConfig::default();
        other.w2v.seed += 1;
        let err = TrainedModel::load_for(&path, &other).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn model_from_bytes_fails_cleanly_at_every_truncation_point() {
        let bytes = tiny_model().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                TrainedModel::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail, not panic or succeed"
            );
        }
        assert!(TrainedModel::from_bytes(&bytes[..]).is_ok());
        let mut bad = bytes.to_vec();
        bad[0] = b'E';
        assert!(TrainedModel::from_bytes(&bad[..]).is_err());
    }

    #[test]
    fn same_campaign_senders_land_nearby() {
        use darkvec_gen::CampaignId;
        let out = simulate(&SimConfig::tiny(26));
        let model = small_model(26);
        let engin = out.truth.members(CampaignId::EnginUmich);
        // Average intra-Engin cosine must exceed the cosine to random
        // Mirai senders by a clear margin.
        let mirai = out.truth.members(CampaignId::MiraiCore);
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..engin.len() {
            for j in (i + 1)..engin.len() {
                if let Some(c) = model.embedding.cosine(&engin[i], &engin[j]) {
                    intra.push(c);
                }
            }
            for m in mirai.iter().take(20) {
                if let Some(c) = model.embedding.cosine(&engin[i], m) {
                    inter.push(c);
                }
            }
        }
        assert!(!intra.is_empty(), "no embedded engin pairs");
        let intra_avg: f32 = intra.iter().sum::<f32>() / intra.len() as f32;
        let inter_avg: f32 = inter.iter().sum::<f32>() / inter.len().max(1) as f32;
        assert!(
            intra_avg > inter_avg + 0.2,
            "intra {intra_avg} vs inter {inter_avg}: embedding lost coordination"
        );
    }
}
