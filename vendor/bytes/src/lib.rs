//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`]/[`BytesMut`] are plain `Vec<u8>` wrappers (no refcounted
//! zero-copy slicing — nothing in this workspace needs it); [`Buf`] and
//! [`BufMut`] cover the little-endian accessors the trace and embedding
//! codecs use.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Byte length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.0.len()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Sequential little-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `n` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `n` bytes remain (as in the real crate).
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, advancing past them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Sequential little-endian writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(1.25);
        w.put_f64_le(-2.5);
        w.put_slice(b"tail");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.25);
        assert_eq!(r.get_f64_le(), -2.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
