//! Observability integration: a single `pipeline::run` must leave behind
//! everything a run manifest needs — the five stage spans nested under
//! the `pipeline` root and non-zero corpus/training counters — and the
//! manifest file itself must serialize all of it.
//!
//! This test lives alone in its own binary: spans and metrics are
//! process-global, and a dedicated binary keeps the assertions
//! independent of whatever other tests record.

use darkvec::{pipeline, DarkVecConfig};
use darkvec_gen::{simulate, SimConfig};
use darkvec_obs::{Json, ManifestBuilder};

const STAGES: [&str; 5] = ["filter", "services", "corpus", "skipgrams", "train"];

#[test]
fn pipeline_run_emits_manifest_with_stage_spans() {
    let out = simulate(&SimConfig::tiny(31));
    let model = pipeline::run(&out.trace, &DarkVecConfig::test_size(31));

    // The span tree has a pipeline root with all five stages as children.
    let roots = darkvec_obs::span::snapshot();
    let root = roots
        .iter()
        .find_map(|r| r.find("pipeline"))
        .expect("pipeline root span");
    for stage in STAGES {
        let child = root
            .child(stage)
            .unwrap_or_else(|| panic!("missing stage span {stage}"));
        assert_eq!(child.count, 1, "{stage} ran once");
    }
    // Word2Vec sub-spans nest under the train stage.
    let train = root.child("train").expect("train stage");
    assert!(
        train.find("w2v.hogwild").is_some(),
        "w2v spans nest under train"
    );

    // Counters reflect the run.
    let snap = darkvec_obs::metrics::snapshot();
    assert!(
        snap.counters["pipeline.corpus_tokens"] > 0,
        "token counter populated"
    );
    assert!(
        snap.counters["pipeline.skipgrams"] > 0,
        "skipgram counter populated"
    );
    assert!(
        snap.counters["w2v.pairs_trained"] > 0,
        "training counter populated"
    );
    assert_eq!(snap.counters["pipeline.corpus_tokens"], model.corpus.tokens);
    assert_eq!(snap.counters["pipeline.skipgrams"], model.skipgrams);

    // The manifest file serializes spans, metrics, and custom sections.
    let mut builder = ManifestBuilder::new("obs-manifest-test");
    builder.section(
        "corpus",
        Json::obj()
            .with("sentences", model.corpus.sentences)
            .with("tokens", model.corpus.tokens),
    );
    let dir = std::env::temp_dir().join(format!("darkvec_obs_manifest_{}", std::process::id()));
    let path = builder.write(&dir).expect("manifest written");
    let text = std::fs::read_to_string(&path).expect("manifest readable");
    for name in [
        "\"pipeline\"",
        "\"filter\"",
        "\"services\"",
        "\"corpus\"",
        "\"skipgrams\"",
        "\"train\"",
    ] {
        assert!(text.contains(name), "manifest missing span {name}");
    }
    assert!(text.contains("pipeline.corpus_tokens"));
    assert!(text.contains("w2v.pairs_trained"));
    assert!(text.contains("\"schema_version\""));
    std::fs::remove_dir_all(&dir).ok();
}
