//! # darkvec-types
//!
//! Traffic substrate types shared by the whole DarkVec workspace.
//!
//! A darknet packet is described by the three dimensions the paper analyses
//! (§1): the **service** it targets (destination port + transport protocol),
//! the **space** it comes from (source IPv4 address) and the **time** it
//! arrives. This crate provides:
//!
//! * [`Ipv4`] / [`Subnet`] — compact IPv4 addresses and CIDR prefixes with
//!   the /24 and /16 groupings the paper uses for cluster inspection;
//! * [`Protocol`] / [`PortKey`] — transport protocols and (port, protocol)
//!   service keys;
//! * [`Packet`] / [`Trace`] — a single darknet observation and a
//!   time-ordered collection of them, with the filtering and windowing
//!   operations DarkVec needs (active-sender filter, ΔT windows, per-day
//!   slicing);
//! * [`stats`] — ECDFs, top-k counters and ranking helpers used by the
//!   dataset-overview figures;
//! * [`io`] — CSV and length-prefixed binary trace serialisation;
//! * [`anonymize`] — prefix-preserving (Crypto-PAn style) source-address
//!   anonymisation for dataset release, as the paper does for its
//!   published traces.

pub mod anonymize;
pub mod error;
pub mod io;
pub mod ip;
pub mod packet;
pub mod port;
pub mod stats;
pub mod time;
pub mod trace;

pub use anonymize::Anonymizer;
pub use error::{Error, Result};
pub use ip::{Ipv4, Subnet};
pub use packet::{Fingerprint, Packet};
pub use port::{PortKey, Protocol};
pub use time::{Timestamp, WindowIter, DAY, HOUR, MINUTE};
pub use trace::{Trace, TraceStats};
