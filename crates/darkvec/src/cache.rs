//! Content-addressed artifact cache for the incremental pipeline.
//!
//! Per-day corpora, trained models and kNN neighbour lists are expensive to
//! recompute and fully determined by (configuration, input span, code
//! version). The cache keys each artifact by an FNV-1a hash over exactly
//! that material, so:
//!
//! * a re-run with identical inputs is served entirely from disk (the
//!   `cache.hit` counters in the run manifest prove it);
//! * any change to the config fingerprint, the trace content, or
//!   [`CODE_SALT`] changes every downstream key — stale artifacts are never
//!   served, they are simply never looked up again.
//!
//! Keys chain: a warm-started model's key folds in the *prior model's key*,
//! so the whole per-day sequence is addressed by its full provenance.

// lint: relaxed-ok(hit/miss counters are metrics counters; cache correctness comes from filesystem atomics (tmp+rename), not these)

use darkvec_types::Packet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bumped whenever the semantics of cached artifacts change (format,
/// training loop, corpus construction). Old cache entries then become
/// unreachable rather than wrong.
pub const CODE_SALT: &str = "incremental-v1";

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms and
/// releases (unlike `std::hash`, which is documented as unstable).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Incremental FNV-1a hasher for composing cache keys out of heterogeneous
/// fields. Length-prefixes variable-size fields so concatenation is
/// unambiguous.
#[derive(Clone, Debug)]
pub struct KeyHasher(u64);

impl KeyHasher {
    /// Starts a key already salted with [`CODE_SALT`].
    pub fn new() -> Self {
        let mut h = KeyHasher(0xcbf2_9ce4_8422_2325);
        h.write_bytes(CODE_SALT.as_bytes());
        h
    }

    fn write_raw(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a variable-length field (length-prefixed).
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        self.write_raw(&(bytes.len() as u64).to_le_bytes());
        self.write_raw(bytes);
        self
    }

    /// Folds a string field.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_bytes(s.as_bytes())
    }

    /// Folds a fixed-width integer.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_raw(&v.to_le_bytes());
        self
    }

    /// The finished key.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        KeyHasher::new()
    }
}

/// Content hash of a packet span — every field that can influence a
/// downstream artifact (timestamps drive windowing, sources are the words,
/// port/proto pick the service, the fingerprint feeds ground truth).
pub fn hash_packets(packets: &[Packet]) -> u64 {
    let mut h = KeyHasher::new();
    h.write_u64(packets.len() as u64);
    for p in packets {
        h.write_u64(p.ts.0);
        h.write_u64(p.src.0 as u64);
        h.write_u64(p.dst_port as u64);
        h.write_u64(p.proto.tag() as u64);
        h.write_u64(match p.fingerprint {
            darkvec_types::Fingerprint::None => 0,
            darkvec_types::Fingerprint::Mirai => 1,
        });
    }
    h.finish()
}

/// Counters of one cache's lifetime (also mirrored into the global
/// `cache.*` metrics that land in run manifests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Loads served from disk.
    pub hits: u64,
    /// Loads that found nothing.
    pub misses: u64,
    /// Artifacts written.
    pub stores: u64,
}

/// A directory of content-addressed artifacts, one subdirectory per kind
/// (`corpus/`, `model/`, `knn/`), one file per key.
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl ArtifactCache {
    /// Opens (and creates if needed) a cache rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(ArtifactCache {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// The cache root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Where an artifact of `kind` under `key` lives (whether or not it
    /// exists yet).
    pub fn path(&self, kind: &str, key: u64) -> PathBuf {
        self.root.join(kind).join(format!("{key:016x}.bin"))
    }

    /// Loads an artifact, counting the hit or miss and recording the
    /// disk-read latency into the `cache.hit_ns` / `cache.miss_ns`
    /// histograms.
    pub fn load(&self, kind: &str, key: u64) -> Option<Vec<u8>> {
        let started = std::time::Instant::now();
        match fs::read(self.path(kind, key)) {
            Ok(bytes) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                darkvec_obs::metrics::counter("cache.hit").add(1);
                darkvec_obs::metrics::counter(&format!("cache.{kind}.hit")).add(1);
                darkvec_obs::metrics::histogram("cache.hit_ns").record_duration(started.elapsed());
                Some(bytes)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                darkvec_obs::metrics::counter("cache.miss").add(1);
                darkvec_obs::metrics::counter(&format!("cache.{kind}.miss")).add(1);
                darkvec_obs::metrics::histogram("cache.miss_ns").record_duration(started.elapsed());
                None
            }
        }
    }

    /// Stores an artifact atomically (write to a temp file, then rename —
    /// a crashed run never leaves a truncated artifact under a valid key).
    /// Write latency lands in the `cache.store_ns` histogram.
    pub fn store(&self, kind: &str, key: u64, bytes: &[u8]) -> io::Result<()> {
        let started = std::time::Instant::now();
        // Build the directory the same way `path` does instead of calling
        // `Path::parent` — that keeps this function panic-free by
        // construction rather than by an `expect` on path shape.
        let dir = self.root.join(kind);
        let path = dir.join(format!("{key:016x}.bin"));
        fs::create_dir_all(&dir)?;
        let tmp = dir.join(format!("{key:016x}.tmp"));
        fs::write(&tmp, bytes)?;
        fs::rename(&tmp, &path)?;
        self.stores.fetch_add(1, Ordering::Relaxed);
        darkvec_obs::metrics::counter("cache.store").add(1);
        darkvec_obs::metrics::histogram("cache.store_ns").record_duration(started.elapsed());
        Ok(())
    }

    /// Lifetime counters of this cache handle.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkvec_types::{Ipv4, Protocol, Timestamp};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("darkvec-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn key_hasher_is_prefix_unambiguous() {
        let k1 = KeyHasher::new().write_str("ab").write_str("c").finish();
        let k2 = KeyHasher::new().write_str("a").write_str("bc").finish();
        assert_ne!(k1, k2);
        let k3 = KeyHasher::new().write_str("ab").write_str("c").finish();
        assert_eq!(k1, k3);
    }

    #[test]
    fn hash_packets_sees_every_field() {
        let base = Packet::new(Timestamp(5), Ipv4(9), 23, Protocol::Tcp);
        let h0 = hash_packets(&[base]);
        let variants = [
            Packet::new(Timestamp(6), Ipv4(9), 23, Protocol::Tcp),
            Packet::new(Timestamp(5), Ipv4(8), 23, Protocol::Tcp),
            Packet::new(Timestamp(5), Ipv4(9), 24, Protocol::Tcp),
            Packet::new(Timestamp(5), Ipv4(9), 23, Protocol::Udp),
            Packet::mirai(Timestamp(5), Ipv4(9), 23),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(h0, hash_packets(&[*v]), "variant {i}");
        }
        assert_ne!(hash_packets(&[]), hash_packets(&[base]));
    }

    #[test]
    fn store_load_round_trip_and_counters() {
        let dir = tmpdir("roundtrip");
        let cache = ArtifactCache::new(&dir).unwrap();
        assert!(cache.load("model", 42).is_none());
        cache.store("model", 42, b"hello").unwrap();
        assert_eq!(cache.load("model", 42).unwrap(), b"hello");
        assert!(cache.load("corpus", 42).is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                stores: 1
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn latency_histograms_record_cache_io() {
        let dir = tmpdir("latency");
        let cache = ArtifactCache::new(&dir).unwrap();
        let hit = darkvec_obs::metrics::histogram("cache.hit_ns");
        let miss = darkvec_obs::metrics::histogram("cache.miss_ns");
        let store = darkvec_obs::metrics::histogram("cache.store_ns");
        let (h0, m0, s0) = (hit.count(), miss.count(), store.count());
        assert!(cache.load("model", 1).is_none());
        cache.store("model", 1, b"payload").unwrap();
        assert!(cache.load("model", 1).is_some());
        assert_eq!(hit.count() - h0, 1);
        assert_eq!(miss.count() - m0, 1);
        assert_eq!(store.count() - s0, 1);
        assert!(store.quantile(0.99) > 0, "store latency is non-zero");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_overwrites_atomically() {
        let dir = tmpdir("overwrite");
        let cache = ArtifactCache::new(&dir).unwrap();
        cache.store("knn", 7, b"one").unwrap();
        cache.store("knn", 7, b"two").unwrap();
        assert_eq!(cache.load("knn", 7).unwrap(), b"two");
        // No temp file left behind.
        let leftovers: Vec<_> = fs::read_dir(dir.join("knn"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}
