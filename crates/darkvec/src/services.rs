//! Service definitions (§5.2): the mapping from a packet's (port,
//! protocol) to the sequence it joins.
//!
//! The paper evaluates three alternatives (Figure 7 / Table 4):
//!
//! * **single service** — all ports in one stream; works for Mirai, fails
//!   for minority classes;
//! * **auto-defined** — one service per top-n popular port, plus a
//!   catch-all (n = 10 in the paper);
//! * **domain knowledge** — the hand-curated 15-service map of Table 7
//!   (plus ICMP, which Figure 3 treats as its own service), with the three
//!   IANA ranges as catch-alls.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use darkvec_types::stats::Counter;
use darkvec_types::{PortKey, Protocol};
use std::collections::HashMap;

/// Dense service identifier (index into [`ServiceMap::names`]).
pub type ServiceId = usize;

/// A total mapping `PortKey -> ServiceId`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceMap {
    names: Vec<String>,
    exact: HashMap<PortKey, ServiceId>,
    fallback: Fallback,
}

/// Where unmapped ports go.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Fallback {
    /// Everything unmapped lands in one service.
    Single(ServiceId),
    /// Unmapped ports split by IANA range (Table 7's three "Unknown"
    /// rows); ICMP gets its own bucket.
    Iana {
        system: ServiceId,
        user: ServiceId,
        ephemeral: ServiceId,
        icmp: ServiceId,
    },
}

impl ServiceMap {
    /// The single-service definition: one stream for the whole darknet.
    pub fn single() -> Self {
        ServiceMap {
            names: vec!["All".to_string()],
            exact: HashMap::new(),
            fallback: Fallback::Single(0),
        }
    }

    /// The auto-defined services: one per top-`n` (port, protocol) key of
    /// the given traffic, plus a catch-all for the rest.
    pub fn auto(ports: &Counter<PortKey>, n: usize) -> Self {
        let top = ports.top(n);
        let mut names = Vec::with_capacity(top.len() + 1);
        let mut exact = HashMap::with_capacity(top.len());
        for (i, (key, _)) in top.into_iter().enumerate() {
            names.push(key.to_string());
            exact.insert(key, i);
        }
        let other = names.len();
        names.push("Other".to_string());
        ServiceMap {
            names,
            exact,
            fallback: Fallback::Single(other),
        }
    }

    /// The domain-knowledge map of Table 7 (15 services + ICMP).
    pub fn domain_knowledge() -> Self {
        let mut names: Vec<String> = Vec::new();
        let mut exact: HashMap<PortKey, ServiceId> = HashMap::new();
        let mut add = |name: &str, keys: &[PortKey]| {
            let id = names.len();
            names.push(name.to_string());
            for &k in keys {
                let prev = exact.insert(k, id);
                assert!(prev.is_none(), "port {k} mapped twice");
            }
            id
        };

        let t = PortKey::tcp;
        let u = PortKey::udp;
        add("Telnet", &[t(23), t(992)]);
        add("SSH", &[t(22)]);
        add(
            "Kerberos",
            &[
                t(88),
                u(88),
                t(543),
                t(544),
                t(749),
                t(7004),
                u(750),
                t(750),
                t(751),
                u(752),
                t(754),
                u(464),
                t(464),
            ],
        );
        add("HTTP", &[t(80), t(443), t(8080)]);
        add("Proxy", &[t(1080), t(6446), t(2121), t(8081), t(57000)]);
        add(
            "Mail",
            &[
                t(25),
                t(143),
                t(174),
                t(209),
                t(465),
                t(587),
                t(110),
                t(995),
                t(993),
            ],
        );
        add(
            "Database",
            &[
                t(210),
                t(5432),
                t(775),
                t(1433),
                u(1433),
                t(1434),
                u(1434),
                t(3306),
                t(27017),
                t(27018),
                t(27019),
                t(3050),
                t(3351),
                t(1583),
            ],
        );
        add("DNS", &[t(853), u(853), u(5353), t(53), u(53)]);
        add("Netbios", &[t(137), u(137), t(138), u(138), t(139), u(139)]);
        add("Netbios-SMB", &[t(445)]);
        add(
            "P2P",
            &[
                t(119),
                t(375),
                t(425),
                t(1214),
                t(412),
                t(1412),
                t(2412),
                t(4662),
                u(12155),
                u(6771),
                u(6881),
                u(6882),
                u(6883),
                u(6884),
                u(6885),
                u(6886),
                u(6887),
                t(6881),
                t(6882),
                t(6883),
                t(6884),
                t(6885),
                t(6886),
                t(6887),
                t(6969),
                t(7000),
                t(9000),
                t(9091),
                t(6346),
                u(6346),
                t(6347),
                u(6347),
            ],
        );
        add(
            "FTP",
            &[
                t(20),
                t(21),
                u(69),
                t(989),
                t(990),
                u(2431),
                u(2433),
                t(2811),
                t(8021),
            ],
        );

        let system = names.len();
        names.push("Unknown System".to_string());
        let user = names.len();
        names.push("Unknown User".to_string());
        let ephemeral = names.len();
        names.push("Unknown Ephemeral".to_string());
        let icmp = names.len();
        names.push("ICMP".to_string());

        ServiceMap {
            names,
            exact,
            fallback: Fallback::Iana {
                system,
                user,
                ephemeral,
                icmp,
            },
        }
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the map defines no services (never after construction).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Service display names, indexed by [`ServiceId`].
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The service a packet to `key` belongs to.
    pub fn service_of(&self, key: PortKey) -> ServiceId {
        if let Some(&id) = self.exact.get(&key) {
            return id;
        }
        match self.fallback {
            Fallback::Single(id) => id,
            Fallback::Iana {
                system,
                user,
                ephemeral,
                icmp,
            } => {
                if key.proto == Protocol::Icmp {
                    icmp
                } else if key.port <= 1023 {
                    system
                } else if key.port <= 49151 {
                    user
                } else {
                    ephemeral
                }
            }
        }
    }

    /// The id of a named service, if present.
    pub fn id_of(&self, name: &str) -> Option<ServiceId> {
        self.names.iter().position(|n| n == name)
    }

    /// Serialises the map into a canonical byte form: exact entries are
    /// sorted by `(port, protocol)`, so equal maps always produce equal
    /// bytes — which is what the artifact cache keys hash.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_u32_le(self.names.len() as u32);
        for name in &self.names {
            let b = name.as_bytes();
            buf.put_u16_le(b.len() as u16);
            buf.put_slice(b);
        }
        let mut entries: Vec<(&PortKey, &ServiceId)> = self.exact.iter().collect();
        entries.sort_by_key(|(k, _)| (k.port, k.proto.tag()));
        buf.put_u32_le(entries.len() as u32);
        for (k, &id) in entries {
            buf.put_u16_le(k.port);
            buf.put_u8(k.proto.tag());
            buf.put_u32_le(id as u32);
        }
        match self.fallback {
            Fallback::Single(id) => {
                buf.put_u8(0);
                buf.put_u32_le(id as u32);
            }
            Fallback::Iana {
                system,
                user,
                ephemeral,
                icmp,
            } => {
                buf.put_u8(1);
                buf.put_u32_le(system as u32);
                buf.put_u32_le(user as u32);
                buf.put_u32_le(ephemeral as u32);
                buf.put_u32_le(icmp as u32);
            }
        }
        buf.freeze()
    }

    /// Inverse of [`ServiceMap::to_bytes`]; fails cleanly on truncated or
    /// corrupt input.
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, String> {
        fn need(buf: &impl Buf, n: usize) -> Result<(), String> {
            if buf.remaining() < n {
                Err(format!(
                    "truncated service map: need {n} bytes, {} remain",
                    buf.remaining()
                ))
            } else {
                Ok(())
            }
        }
        need(&buf, 4)?;
        let n_names = buf.get_u32_le() as usize;
        let mut names = Vec::with_capacity(n_names.min(1 << 16));
        for _ in 0..n_names {
            need(&buf, 2)?;
            let len = buf.get_u16_le() as usize;
            need(&buf, len)?;
            let mut raw = vec![0u8; len];
            buf.copy_to_slice(&mut raw);
            names.push(String::from_utf8(raw).map_err(|e| format!("bad service name: {e}"))?);
        }
        need(&buf, 4)?;
        let n_exact = buf.get_u32_le() as usize;
        let mut exact = HashMap::with_capacity(n_exact.min(1 << 20));
        for _ in 0..n_exact {
            need(&buf, 7)?;
            let port = buf.get_u16_le();
            let proto = Protocol::from_tag(buf.get_u8())
                .ok_or_else(|| "bad protocol tag in service map".to_string())?;
            let id = buf.get_u32_le() as ServiceId;
            if id >= names.len() {
                return Err(format!("service id {id} out of range"));
            }
            exact.insert(PortKey { port, proto }, id);
        }
        need(&buf, 1)?;
        let check = |id: u32| -> Result<ServiceId, String> {
            if (id as usize) < names.len() {
                Ok(id as ServiceId)
            } else {
                Err(format!("fallback service id {id} out of range"))
            }
        };
        let fallback = match buf.get_u8() {
            0 => {
                need(&buf, 4)?;
                Fallback::Single(check(buf.get_u32_le())?)
            }
            1 => {
                need(&buf, 16)?;
                Fallback::Iana {
                    system: check(buf.get_u32_le())?,
                    user: check(buf.get_u32_le())?,
                    ephemeral: check(buf.get_u32_le())?,
                    icmp: check(buf.get_u32_le())?,
                }
            }
            t => return Err(format!("bad fallback tag {t} in service map")),
        };
        Ok(ServiceMap {
            names,
            exact,
            fallback,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_maps_everything_to_one() {
        let m = ServiceMap::single();
        assert_eq!(m.len(), 1);
        assert_eq!(m.service_of(PortKey::tcp(23)), 0);
        assert_eq!(m.service_of(PortKey::udp(53)), 0);
        assert_eq!(m.service_of(PortKey::icmp()), 0);
    }

    #[test]
    fn auto_top_ports_get_own_service() {
        let mut c: Counter<PortKey> = Counter::new();
        c.add_n(PortKey::tcp(23), 100);
        c.add_n(PortKey::tcp(445), 50);
        c.add_n(PortKey::udp(53), 10);
        c.add_n(PortKey::tcp(80), 5);
        let m = ServiceMap::auto(&c, 2);
        assert_eq!(m.len(), 3); // 2 tops + Other
        assert_eq!(m.service_of(PortKey::tcp(23)), 0);
        assert_eq!(m.service_of(PortKey::tcp(445)), 1);
        let other = m.id_of("Other").unwrap();
        assert_eq!(m.service_of(PortKey::udp(53)), other);
        assert_eq!(m.service_of(PortKey::tcp(80)), other);
        assert_eq!(m.names()[0], "23/tcp");
    }

    #[test]
    fn auto_handles_more_n_than_ports() {
        let mut c: Counter<PortKey> = Counter::new();
        c.add(PortKey::tcp(23));
        let m = ServiceMap::auto(&c, 10);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn domain_has_paper_service_count() {
        let m = ServiceMap::domain_knowledge();
        // Table 7's 15 services + the ICMP bucket.
        assert_eq!(m.len(), 16);
        for name in [
            "Telnet",
            "SSH",
            "Kerberos",
            "HTTP",
            "Proxy",
            "Mail",
            "Database",
            "DNS",
            "Netbios",
            "Netbios-SMB",
            "P2P",
            "FTP",
            "Unknown System",
            "Unknown User",
            "Unknown Ephemeral",
            "ICMP",
        ] {
            assert!(m.id_of(name).is_some(), "missing service {name}");
        }
    }

    #[test]
    fn domain_maps_table7_examples() {
        let m = ServiceMap::domain_knowledge();
        let sid = |name: &str| m.id_of(name).unwrap();
        assert_eq!(m.service_of(PortKey::tcp(23)), sid("Telnet"));
        assert_eq!(m.service_of(PortKey::tcp(992)), sid("Telnet"));
        assert_eq!(m.service_of(PortKey::tcp(22)), sid("SSH"));
        assert_eq!(m.service_of(PortKey::tcp(8080)), sid("HTTP"));
        assert_eq!(m.service_of(PortKey::udp(53)), sid("DNS"));
        assert_eq!(m.service_of(PortKey::tcp(445)), sid("Netbios-SMB"));
        assert_eq!(m.service_of(PortKey::udp(137)), sid("Netbios"));
        assert_eq!(m.service_of(PortKey::tcp(5432)), sid("Database"));
        assert_eq!(m.service_of(PortKey::udp(6881)), sid("P2P"));
        assert_eq!(m.service_of(PortKey::tcp(21)), sid("FTP"));
        assert_eq!(m.service_of(PortKey::icmp()), sid("ICMP"));
    }

    #[test]
    fn domain_fallback_splits_by_iana_range() {
        let m = ServiceMap::domain_knowledge();
        let sid = |name: &str| m.id_of(name).unwrap();
        assert_eq!(m.service_of(PortKey::tcp(7)), sid("Unknown System"));
        assert_eq!(m.service_of(PortKey::tcp(5555)), sid("Unknown User"));
        assert_eq!(m.service_of(PortKey::udp(60000)), sid("Unknown Ephemeral"));
    }

    #[test]
    fn domain_distinguishes_protocols() {
        let m = ServiceMap::domain_knowledge();
        // 1433/tcp and 1433/udp are both Database, but 5353/tcp is NOT DNS
        // (only 5353/udp is in Table 7).
        assert_eq!(
            m.service_of(PortKey::tcp(1433)),
            m.service_of(PortKey::udp(1433))
        );
        assert_ne!(m.service_of(PortKey::tcp(5353)), m.id_of("DNS").unwrap());
    }

    #[test]
    fn bytes_round_trip_all_variants() {
        let mut c: Counter<PortKey> = Counter::new();
        c.add_n(PortKey::tcp(23), 100);
        c.add_n(PortKey::udp(53), 10);
        for m in [
            ServiceMap::single(),
            ServiceMap::auto(&c, 2),
            ServiceMap::domain_knowledge(),
        ] {
            let bytes = m.to_bytes();
            let back = ServiceMap::from_bytes(&bytes[..]).unwrap();
            assert_eq!(m, back);
            // Canonical form: re-serialising gives identical bytes.
            assert_eq!(bytes, back.to_bytes());
        }
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let bytes = ServiceMap::domain_knowledge().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ServiceMap::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_port_maps_somewhere() {
        let m = ServiceMap::domain_knowledge();
        for port in [0u16, 1, 1023, 1024, 49151, 49152, 65535] {
            assert!(m.service_of(PortKey::tcp(port)) < m.len());
            assert!(m.service_of(PortKey::udp(port)) < m.len());
        }
    }
}
