//! Unsupervised-analysis artifacts: Figures 10 and 11 and Table 5.

use crate::table::{count, f, TextTable};
use crate::Ctx;
use darkvec::inspect::profile_clusters;
use darkvec::unsupervised::{
    cluster_embedding, dominant_labels, k_sweep_with, ClusterConfig, Clustering,
};
use darkvec_gen::CampaignId;
use darkvec_types::Ipv4;
use std::collections::HashMap;

/// Figure 10 — number of clusters and modularity vs k′.
pub fn fig10(ctx: &Ctx) -> String {
    let model = ctx.model();
    let ks: Vec<usize> = (1..=14).collect();
    let points = k_sweep_with(&model.embedding, &ks, ctx.sim_cfg.seed, 0, &ctx.backend);

    let mut out = String::from("Figure 10: impact of k' on cluster detection\n\n");
    let mut t = TextTable::new(vec!["k'", "clusters", "modularity", "graph components"]);
    let mut csv = String::from("k,clusters,modularity,components\n");
    for p in &points {
        csv.push_str(&format!(
            "{},{},{:.6},{}\n",
            p.k, p.clusters, p.modularity, p.components
        ));
        t.row(vec![
            p.k.to_string(),
            p.clusters.to_string(),
            f(p.modularity, 3),
            p.components.to_string(),
        ]);
    }
    ctx.write_artifact("fig10_series.csv", &csv);
    out.push_str(&t.render());
    out.push_str("\nk'=1 fragments the graph into many components/clusters; the elbow sits at small k'\n(the paper picks k'=3), after which modularity declines slowly.\n");
    out
}

/// The default clustering used by fig11/fig12-15/table5.
pub fn default_clustering(ctx: &Ctx) -> Clustering {
    cluster_embedding(
        &ctx.model().embedding,
        &ClusterConfig {
            k: 3,
            seed: ctx.sim_cfg.seed,
            threads: 0,
            backend: ctx.backend.clone(),
        },
    )
}

/// Figure 11 — mean silhouette of each cluster, ranked, with notable
/// clusters annotated by their dominant hidden campaign.
pub fn fig11(ctx: &Ctx) -> String {
    let model = ctx.model();
    let clustering = default_clustering(ctx);
    let truth_map = campaign_map(ctx);
    let dominants = dominant_labels(&clustering, &model.embedding, &truth_map);
    let sizes = clustering.sizes();

    let mut out = format!(
        "Figure 11: average silhouette of the {} clusters (k'=3, modularity {:.3})\n\n",
        clustering.clusters, clustering.modularity
    );
    let mut t = TextTable::new(vec![
        "rank",
        "cluster",
        "size",
        "silhouette",
        "dominant campaign (purity)",
    ]);
    let mut csv = String::from("rank,cluster,size,silhouette\n");
    for (rank, (cid, sil)) in clustering.silhouette_ranking().into_iter().enumerate() {
        csv.push_str(&format!(
            "{},{cid},{},{sil:.6}\n",
            rank + 1,
            sizes[cid as usize]
        ));
        let note = match &dominants[cid as usize] {
            Some((campaign, purity)) => format!("{campaign} ({:.0}%)", purity * 100.0),
            None => "-".to_string(),
        };
        t.row(vec![
            (rank + 1).to_string(),
            format!("C{cid}"),
            sizes[cid as usize].to_string(),
            f(sil, 2),
            note,
        ]);
    }
    ctx.write_artifact("fig11_series.csv", &csv);
    out.push_str(&t.render());
    let good = clustering.silhouettes.iter().filter(|&&s| s > 0.5).count();
    out.push_str(&format!(
        "\n{good}/{} clusters have silhouette > 0.5 (the paper reports more than half).\n",
        clustering.clusters
    ));
    out
}

/// Table 5 — summary of extracted coordinated senders: per notable
/// cluster, member count, ports, silhouette and traffic evidence.
pub fn table5(ctx: &Ctx) -> String {
    let model = ctx.model();
    let clustering = default_clustering(ctx);
    let profiles = profile_clusters(ctx.trace(), &model.embedding, &clustering);
    let truth_map = campaign_map(ctx);
    let dominants = dominant_labels(&clustering, &model.embedding, &truth_map);

    let mut out = String::from("Table 5: summary of extracted coordinated senders (k'=3)\n\n");
    let mut t = TextTable::new(vec![
        "cluster",
        "campaign (purity)",
        "IPs",
        "ports",
        "sil.",
        "/24s",
        "evidence",
    ]);
    // Notable clusters: dominated by a coordinated campaign.
    let mut shown = 0;
    for p in &profiles {
        let Some((campaign, purity)) = &dominants[p.cluster as usize] else {
            continue;
        };
        if !campaign.coordinated() || p.ips < 4 || *purity < 0.5 {
            continue;
        }
        shown += 1;
        let top = p
            .top_ports
            .iter()
            .take(2)
            .map(|(k, share)| format!("{k} {:.0}%", share * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        let subnet_note = if p.max_in_one_24 == p.ips && p.subnets24 == 1 {
            "single /24".to_string()
        } else if p.subnets16 == 1 {
            format!("{} /24s in one /16", p.subnets24)
        } else {
            format!("{} /24s", p.subnets24)
        };
        let tempo = match p.regularity {
            darkvec::temporal::Regularity::Daily => "; daily pattern",
            darkvec::temporal::Regularity::Hourly => "; hourly regular",
            darkvec::temporal::Regularity::Growing => "; growing (worm-like)",
            darkvec::temporal::Regularity::Irregular => "",
        };
        t.row(vec![
            format!("C{}", p.cluster),
            format!("{campaign} ({:.0}%)", purity * 100.0),
            p.ips.to_string(),
            p.ports.to_string(),
            f(p.silhouette, 2),
            subnet_note,
            format!("{} pkts; top {top}{tempo}", count(p.packets)),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\n{shown} coordinated clusters recovered out of {} total clusters.\n",
        clustering.clusters
    ));

    // Recovery scorecard: which hidden coordinated campaigns got a
    // (mostly-pure) cluster?
    let mut recovered: HashMap<CampaignId, usize> = HashMap::new();
    for (p, dom) in profiles.iter().zip(&dominants) {
        if let Some((campaign, purity)) = dom {
            if campaign.coordinated() && *purity >= 0.5 && p.ips >= 4 {
                *recovered.entry(*campaign).or_insert(0) += p.ips;
            }
        }
    }
    out.push_str("\nRecovered coordinated campaigns: ");
    let mut names: Vec<String> = recovered.keys().map(|c| c.to_string()).collect();
    names.sort();
    out.push_str(&names.join(", "));
    out.push('\n');
    out
}

/// Sender → hidden campaign map for annotation.
fn campaign_map(ctx: &Ctx) -> HashMap<Ipv4, CampaignId> {
    let truth = ctx.truth();
    ctx.trace()
        .senders()
        .into_iter()
        .filter_map(|ip| truth.campaign(ip).map(|c| (ip, c)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_and_table5_run_end_to_end() {
        let ctx = Ctx::for_tests(95);
        let out10 = fig10(&ctx);
        assert!(out10.contains("modularity"));
        let out5 = table5(&ctx);
        assert!(out5.contains("coordinated clusters recovered"), "{out5}");
    }
}
