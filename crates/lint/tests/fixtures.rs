//! Fixture tests: one known-bad and one known-good snippet per rule,
//! plus annotation and allowlist behaviour. Fake paths are chosen to
//! land in (or out of) the module sets of [`LintConfig::repo_policy`].

use darkvec_lint::allow::Allowlist;
use darkvec_lint::{lint_source, Diagnostic, LintConfig};

fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
    let cfg = LintConfig::repo_policy();
    let mut rules: Vec<&'static str> = lint_source(path, src, &cfg)
        .into_iter()
        .map(|d| d.rule)
        .collect();
    rules.dedup();
    rules
}

// ---------------------------------------------------------------- DV001

#[test]
fn dv001_unsafe_without_safety_comment_is_flagged() {
    let src = "fn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_hit("crates/x/src/a.rs", src), ["DV001"]);
}

#[test]
fn dv001_safety_comment_above_is_accepted() {
    let src = "fn f(p: *const f32) -> f32 {\n    // SAFETY: caller guarantees p is valid\n    unsafe { *p }\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn dv001_trailing_safety_comment_is_accepted() {
    let src = "fn f(p: *const f32) -> f32 {\n    unsafe { *p } // SAFETY: caller guarantees p is valid\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn dv001_safety_doc_section_is_accepted() {
    let src = "/// Does a thing.\n///\n/// # Safety\n/// `p` must be valid for reads.\npub unsafe fn f(p: *const f32) -> f32 {\n    // SAFETY: contract forwarded from the fn's # Safety section\n    unsafe { *p }\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn dv001_comment_block_must_be_contiguous() {
    // A blank code line between the SAFETY comment and the unsafe token
    // breaks the association.
    let src = "fn f(p: *const f32) -> f32 {\n    // SAFETY: too far away\n    let _x = 1;\n    unsafe { *p }\n}\n";
    assert_eq!(rules_hit("crates/x/src/a.rs", src), ["DV001"]);
}

#[test]
fn dv001_applies_even_in_test_trees() {
    let src = "fn f(p: *const f32) -> f32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_hit("crates/x/tests/a.rs", src), ["DV001"]);
}

// ---------------------------------------------------------------- DV002

#[test]
fn dv002_unwrap_in_daemon_module_is_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert_eq!(rules_hit("crates/darkvec/src/serve.rs", src), ["DV002"]);
}

#[test]
fn dv002_expect_and_panic_macros_are_flagged() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    if x.is_none() { panic!(\"no\"); }\n    x.expect(\"checked\")\n}\n";
    let cfg = LintConfig::repo_policy();
    let diags = lint_source("crates/darkvec/src/protocol.rs", src, &cfg);
    assert_eq!(diags.len(), 2);
    assert!(diags.iter().all(|d| d.rule == "DV002"));
}

#[test]
fn dv002_does_not_apply_outside_daemon_modules() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    assert!(rules_hit("crates/x/src/other.rs", src).is_empty());
}

#[test]
fn dv002_cfg_test_module_is_exempt() {
    let src = "fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        Some(1u32).unwrap();\n    }\n}\n";
    assert!(rules_hit("crates/darkvec/src/serve.rs", src).is_empty());
}

#[test]
fn dv002_unwrap_inside_string_literal_is_not_code() {
    let src = "fn f() -> &'static str {\n    \"call .unwrap() and panic!\"\n}\n";
    assert!(rules_hit("crates/darkvec/src/serve.rs", src).is_empty());
}

#[test]
fn dv002_unwrap_or_else_is_not_unwrap() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0)\n}\n";
    assert!(rules_hit("crates/darkvec/src/serve.rs", src).is_empty());
}

// ---------------------------------------------------------------- DV003

#[test]
fn dv003_partial_cmp_call_is_flagged() {
    let src = "fn f(v: &mut Vec<f32>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n";
    let rules = rules_hit("crates/x/src/a.rs", src);
    assert!(rules.contains(&"DV003"), "{rules:?}");
}

#[test]
fn dv003_total_cmp_is_clean() {
    let src = "fn f(v: &mut Vec<f32>) {\n    v.sort_by(|a, b| a.total_cmp(b));\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn dv003_partial_ord_impl_definition_is_exempt() {
    let src = "impl PartialOrd for W {\n    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {\n        Some(self.cmp(other))\n    }\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn dv003_float_ord_ok_annotation_is_honoured() {
    let src = "fn f(a: &u32, b: &u32) {\n    // lint: float-ord-ok(u32 keys, no floats in this comparison)\n    let _ = a.partial_cmp(b);\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- DV004

#[test]
fn dv004_hashmap_iteration_in_determinism_module_is_flagged() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u64>) -> u64 {\n    m.values().sum()\n}\n";
    assert_eq!(rules_hit("crates/darkvec/src/cache.rs", src), ["DV004"]);
}

#[test]
fn dv004_for_loop_over_tracked_map_is_flagged() {
    let src = "use std::collections::HashMap;\nfn f() {\n    let mut m = HashMap::new();\n    m.insert(1u32, 2u64);\n    for (k, v) in &m {\n        let _ = (k, v);\n    }\n}\n";
    assert_eq!(rules_hit("crates/darkvec/src/shard.rs", src), ["DV004"]);
}

#[test]
fn dv004_does_not_apply_outside_determinism_modules() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u64>) -> u64 {\n    m.values().sum()\n}\n";
    assert!(rules_hit("crates/x/src/other.rs", src).is_empty());
}

#[test]
fn dv004_btreemap_iteration_is_clean() {
    let src = "use std::collections::BTreeMap;\nfn f(m: &BTreeMap<u32, u64>) -> u64 {\n    m.values().sum()\n}\n";
    assert!(rules_hit("crates/darkvec/src/cache.rs", src).is_empty());
}

#[test]
fn dv004_nondeterministic_ok_annotation_is_honoured() {
    let src = "use std::collections::HashMap;\nfn f(m: &HashMap<u32, u64>) -> u64 {\n    // lint: nondeterministic-ok(integer sum is commutative)\n    m.values().sum()\n}\n";
    assert!(rules_hit("crates/darkvec/src/cache.rs", src).is_empty());
}

// ---------------------------------------------------------------- DV005

#[test]
fn dv005_relaxed_outside_annotated_module_is_flagged() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    assert_eq!(rules_hit("crates/x/src/a.rs", src), ["DV005"]);
}

#[test]
fn dv005_file_scoped_relaxed_ok_blesses_whole_module() {
    let src = "// lint: relaxed-ok(this module holds metrics counters only)\nuse std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n    c.load(Ordering::Relaxed);\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn dv005_test_trees_are_exempt() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
    assert!(rules_hit("crates/x/tests/a.rs", src).is_empty());
}

#[test]
fn dv005_seqcst_is_always_clean() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::SeqCst);\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

// ---------------------------------------------------------------- DV006

#[test]
fn dv006_narrow_cast_in_wire_module_is_flagged() {
    let src = "fn f(v: &[u8]) -> u16 {\n    v.len() as u16\n}\n";
    assert_eq!(rules_hit("crates/darkvec/src/protocol.rs", src), ["DV006"]);
}

#[test]
fn dv006_cast_ok_annotation_is_honoured() {
    let src = "fn f(v: &[u8]) -> u16 {\n    v.len() as u16 // lint: cast-ok(caller caps v at MAX_FRAME which fits u16)\n}\n";
    assert!(rules_hit("crates/darkvec/src/protocol.rs", src).is_empty());
}

#[test]
fn dv006_widening_casts_are_clean() {
    let src = "fn f(v: &[u8]) -> u64 {\n    v.len() as u64\n}\n";
    assert!(rules_hit("crates/ml/src/quant.rs", src).is_empty());
}

#[test]
fn dv006_does_not_apply_outside_cast_modules() {
    let src = "fn f(v: &[u8]) -> u16 {\n    v.len() as u16\n}\n";
    assert!(rules_hit("crates/x/src/other.rs", src).is_empty());
}

// ---------------------------------------------------------------- DV007

#[test]
fn dv007_annotation_without_reason_is_flagged() {
    let src = "fn f(v: &[u8]) -> u16 {\n    v.len() as u16 // lint: cast-ok()\n}\n";
    let rules = rules_hit("crates/darkvec/src/protocol.rs", src);
    assert!(rules.contains(&"DV007"), "{rules:?}");
}

#[test]
fn dv007_unknown_ok_annotation_name_is_flagged() {
    let src = "fn f() {\n    // lint: casts-ok(typo in the annotation name)\n    let _ = 1;\n}\n";
    assert_eq!(rules_hit("crates/x/src/a.rs", src), ["DV007"]);
}

#[test]
fn dv007_prose_mentioning_lint_colon_is_not_an_annotation() {
    let src = "fn f() {\n    // run the lint: cargo run -p darkvec-lint\n    let _ = 1;\n}\n";
    assert!(rules_hit("crates/x/src/a.rs", src).is_empty());
}

// ------------------------------------------------------- DV008 allowlist

fn one_diag(path: &str, src: &str) -> (Diagnostic, String) {
    let cfg = LintConfig::repo_policy();
    let diags = lint_source(path, src, &cfg);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let d = diags.into_iter().next().expect("asserted nonempty");
    let line_text = src
        .lines()
        .nth(d.line - 1)
        .expect("diagnostic points into src")
        .to_string();
    (d, line_text)
}

#[test]
fn allowlist_entry_absolves_matching_diagnostic() {
    let (d, line_text) = one_diag(
        "crates/darkvec/src/serve.rs",
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let mut allow = Allowlist::parse(
        "lint.allow",
        "DV002 | serve.rs | x.unwrap() | fixture: documented false positive\n",
    );
    assert!(allow.absolves(&d, &line_text));
    assert!(allow.stale_entries().is_empty());
}

#[test]
fn allowlist_mismatched_fragment_does_not_absolve_and_goes_stale() {
    let (d, line_text) = one_diag(
        "crates/darkvec/src/serve.rs",
        "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let mut allow = Allowlist::parse(
        "lint.allow",
        "DV002 | serve.rs | some_other_code | fixture: stale entry\n",
    );
    assert!(!allow.absolves(&d, &line_text));
    let stale = allow.stale_entries();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].rule, "DV008");
}

#[test]
fn allowlist_entry_without_reason_is_a_violation() {
    let allow = Allowlist::parse("lint.allow", "DV002 | serve.rs | x.unwrap() |\n");
    let stale = allow.stale_entries();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].rule, "DV008");
    assert!(
        stale[0].message.contains("no reason"),
        "{}",
        stale[0].message
    );
}

#[test]
fn allowlist_malformed_line_is_a_violation() {
    let allow = Allowlist::parse("lint.allow", "DV002 serve.rs whatever\n");
    let stale = allow.stale_entries();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].rule, "DV008");
}

#[test]
fn allowlist_comments_and_blank_lines_are_ignored() {
    let allow = Allowlist::parse("lint.allow", "# a comment\n\n   \n# another\n");
    assert!(allow.entries.is_empty());
    assert!(allow.stale_entries().is_empty());
}

// ------------------------------------------------------------ reporting

#[test]
fn diagnostics_carry_file_line_and_rule() {
    let cfg = LintConfig::repo_policy();
    let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
    let diags = lint_source("crates/darkvec/src/store.rs", src, &cfg);
    assert_eq!(diags.len(), 1);
    let rendered = diags[0].to_string();
    assert!(
        rendered.starts_with("crates/darkvec/src/store.rs:2: DV002 "),
        "{rendered}"
    );
}
