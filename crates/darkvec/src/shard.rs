//! Parallel shard-merge corpus build.
//!
//! The incremental pipeline and the serve daemon both assemble a window
//! corpus out of per-day shards ([`build_day_corpus`]); at paper scale
//! (30 days × millions of packets) the serial day loop dominates every
//! cold step. This module fans shard construction across worker threads
//! and merges the results **deterministically**:
//!
//! * each worker builds (or loads from the [`ArtifactCache`]) whole day
//!   shards and counts its tokens locally — no shared mutable state;
//! * the merged corpus is the day-order concatenation of the shard
//!   corpora, which is sentence-for-sentence what the serial loop
//!   produces (ΔT divides a day, so no window straddles a boundary);
//! * per-shard token counts are summed and word-sorted; fed through
//!   [`Vocab::from_counts`] they assign exactly the ids
//!   `Vocab::build` derives from the concatenated corpus, because both
//!   rank by `(count desc, word asc)`.
//!
//! The result is bit-identical to the serial path for **any** thread
//! count (asserted by the tests below and gated in CI by `xp scale`),
//! so `--shard-threads` is pure wall-clock and never enters cache keys.

use crate::cache::ArtifactCache;
use crate::corpus::{build_day_corpus, corpus_from_bytes, corpus_to_bytes};
use crate::services::ServiceMap;
use darkvec_types::{Ipv4, Trace};
use darkvec_w2v::Vocab;
use std::collections::{BTreeMap, HashMap};

/// One day's corpus plus its locally-counted vocabulary.
#[derive(Clone, Debug)]
pub struct CorpusShard {
    /// Zero-based capture day.
    pub day: u64,
    /// The day's sentences, in [`build_day_corpus`] order.
    pub corpus: Vec<Vec<Ipv4>>,
    /// Token occurrences within this shard.
    pub counts: HashMap<Ipv4, u64>,
}

/// A window corpus merged from shards, with the summed vocabulary counts.
#[derive(Clone, Debug)]
pub struct MergedCorpus {
    /// Day-order concatenation of the shard corpora.
    pub corpus: Vec<Vec<Ipv4>>,
    /// Summed `(word, count)` pairs, sorted by word — deterministic
    /// regardless of shard or thread scheduling.
    pub counts: Vec<(Ipv4, u64)>,
}

impl MergedCorpus {
    /// The vocabulary the merged counts induce, identical to
    /// `Vocab::build(corpus, min_count)` over the concatenated corpus
    /// (both rank words by `(count desc, word asc)`).
    pub fn vocab(&self, min_count: u64) -> Vocab<Ipv4> {
        let kept: Vec<(Ipv4, u64)> = self
            .counts
            .iter() // MergedCorpus::counts is a word-sorted Vec
            .filter(|&&(_, c)| c >= min_count.max(1))
            .copied()
            .collect();
        Vocab::from_counts(kept).expect("merged counts are deduplicated and positive")
    }
}

/// Counts token occurrences of one corpus.
pub fn count_tokens(corpus: &[Vec<Ipv4>]) -> HashMap<Ipv4, u64> {
    let mut counts = HashMap::new();
    for sentence in corpus {
        for &ip in sentence {
            *counts.entry(ip).or_insert(0) += 1;
        }
    }
    counts
}

/// Resolves a thread-count knob: `0` means one per available core, and
/// the count never exceeds the number of work items.
fn resolve_threads(threads: usize, work: usize) -> usize {
    let t = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    };
    t.clamp(1, work.max(1))
}

/// Builds the day shards `first_day..=last_day` in parallel.
///
/// `keys[i]` is the cache key of day `first_day + i` (the same
/// content-addressed construction the serial loop uses); with
/// `cache: Some(..)` each worker loads hits and stores its freshly built
/// shards. Results come back in day order, independent of `threads`.
///
/// # Panics
/// Panics if `keys.len()` does not cover the day range, or as
/// [`build_day_corpus`] does.
#[allow(clippy::too_many_arguments)]
pub fn build_shards(
    trace: &Trace,
    first_day: u64,
    last_day: u64,
    keys: &[u64],
    services: &ServiceMap,
    dt: u64,
    cache: Option<&ArtifactCache>,
    threads: usize,
) -> Vec<CorpusShard> {
    let n_days = (last_day - first_day + 1) as usize;
    assert_eq!(keys.len(), n_days, "one cache key per day");
    let _span = darkvec_obs::span!("shard.build");
    let threads = resolve_threads(threads, n_days);

    let mut shards: Vec<Option<CorpusShard>> = vec![None; n_days];
    let chunk = n_days.div_ceil(threads);
    let ctx = darkvec_obs::span::context();
    crossbeam::scope(|scope| {
        for (c, out) in shards.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move |_| {
                let _worker = darkvec_obs::span!("shard.build.worker", ctx);
                for (off, slot) in out.iter_mut().enumerate() {
                    let day = first_day + (base + off) as u64;
                    let key = keys[base + off];
                    let corpus = cache
                        .and_then(|c| c.load("corpus", key))
                        .and_then(|raw| corpus_from_bytes(&raw[..]).ok())
                        .unwrap_or_else(|| {
                            let built = build_day_corpus(trace, day, services, dt);
                            if let Some(c) = cache {
                                let _ = c.store("corpus", key, &corpus_to_bytes(&built));
                            }
                            built
                        });
                    let counts = count_tokens(&corpus);
                    *slot = Some(CorpusShard {
                        day,
                        corpus,
                        counts,
                    });
                }
            });
        }
    })
    .expect("shard build worker panicked");
    darkvec_obs::metrics::counter("shard.built").add(n_days as u64);
    shards
        .into_iter()
        .map(|s| s.expect("every day slot is filled"))
        .collect()
}

/// Merges built shards: corpora are concatenated in the order given
/// (callers pass day order), counts are summed and word-sorted.
pub fn merge_shards(shards: Vec<CorpusShard>) -> MergedCorpus {
    let _span = darkvec_obs::span!("shard.merge");
    let mut corpus = Vec::with_capacity(shards.iter().map(|s| s.corpus.len()).sum::<usize>());
    let mut summed: BTreeMap<Ipv4, u64> = BTreeMap::new();
    for shard in shards {
        corpus.extend(shard.corpus);
        // lint: nondeterministic-ok(integer sums into a BTreeMap are commutative, and the BTreeMap re-sorts by word)
        for (ip, c) in shard.counts {
            *summed.entry(ip).or_insert(0) += c;
        }
    }
    MergedCorpus {
        corpus,
        counts: summed.into_iter().collect(),
    }
}

/// Merges borrowed shard corpora (the serve trainer's window, whose
/// shards stay alive in the ingest thread): sentences are cloned and
/// counted in parallel per shard, then concatenated in the order given.
pub fn merge_window(shard_corpora: &[&[Vec<Ipv4>]], threads: usize) -> MergedCorpus {
    let _span = darkvec_obs::span!("shard.merge_window");
    let threads = resolve_threads(threads, shard_corpora.len());
    let mut built: Vec<Option<CorpusShard>> = vec![None; shard_corpora.len()];
    let chunk = shard_corpora.len().div_ceil(threads).max(1);
    crossbeam::scope(|scope| {
        for (c, out) in built.chunks_mut(chunk).enumerate() {
            let base = c * chunk;
            scope.spawn(move |_| {
                for (off, slot) in out.iter_mut().enumerate() {
                    let corpus = shard_corpora[base + off].to_vec();
                    let counts = count_tokens(&corpus);
                    *slot = Some(CorpusShard {
                        day: (base + off) as u64,
                        corpus,
                        counts,
                    });
                }
            });
        }
    })
    .expect("window merge worker panicked");
    merge_shards(
        built
            .into_iter()
            .map(|s| s.expect("every shard slot is filled"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;
    use darkvec_types::{Packet, Protocol, Timestamp, DAY, HOUR};

    fn ip(d: u8) -> Ipv4 {
        Ipv4::new(10, 0, 0, d)
    }

    fn multi_day_trace() -> Trace {
        Trace::new(
            (0..800u64)
                .map(|i| {
                    Packet::new(
                        Timestamp(i * 997 % (4 * DAY)),
                        ip((i % 17) as u8),
                        23 + (i % 5) as u16,
                        Protocol::Tcp,
                    )
                })
                .collect(),
        )
    }

    fn serial_shards(trace: &Trace, services: &ServiceMap) -> Vec<CorpusShard> {
        (0..trace.days())
            .map(|day| {
                let corpus = build_day_corpus(trace, day, services, HOUR);
                let counts = count_tokens(&corpus);
                CorpusShard {
                    day,
                    corpus,
                    counts,
                }
            })
            .collect()
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial_for_any_thread_count() {
        let trace = multi_day_trace();
        let services = ServiceMap::domain_knowledge();
        let keys: Vec<u64> = (0..trace.days()).collect();
        let serial = merge_shards(serial_shards(&trace, &services));
        for threads in [1, 2, 3, 8, 0] {
            let shards = build_shards(
                &trace,
                0,
                trace.days() - 1,
                &keys,
                &services,
                HOUR,
                None,
                threads,
            );
            let merged = merge_shards(shards);
            assert_eq!(merged.corpus, serial.corpus, "threads={threads}");
            assert_eq!(merged.counts, serial.counts, "threads={threads}");
        }
    }

    #[test]
    fn merged_corpus_equals_one_shot_build() {
        let trace = multi_day_trace();
        let services = ServiceMap::domain_knowledge();
        let keys: Vec<u64> = (0..trace.days()).collect();
        let shards = build_shards(&trace, 0, trace.days() - 1, &keys, &services, HOUR, None, 4);
        let merged = merge_shards(shards);
        assert_eq!(merged.corpus, build_corpus(&trace, &services, HOUR));
    }

    #[test]
    fn merged_vocab_matches_vocab_build_exactly() {
        let trace = multi_day_trace();
        let services = ServiceMap::domain_knowledge();
        let keys: Vec<u64> = (0..trace.days()).collect();
        let merged = merge_shards(build_shards(
            &trace,
            0,
            trace.days() - 1,
            &keys,
            &services,
            HOUR,
            None,
            0,
        ));
        for min_count in [1, 2, 10] {
            let from_merge = merged.vocab(min_count);
            let from_build = Vocab::build(merged.corpus.iter().map(|s| s.iter()), min_count);
            assert_eq!(from_merge.len(), from_build.len(), "min_count={min_count}");
            assert_eq!(from_merge.words(), from_build.words());
            assert_eq!(from_merge.counts(), from_build.counts());
        }
    }

    #[test]
    fn merge_window_matches_owned_merge() {
        let trace = multi_day_trace();
        let services = ServiceMap::domain_knowledge();
        let shards = serial_shards(&trace, &services);
        let borrowed: Vec<&[Vec<Ipv4>]> = shards.iter().map(|s| s.corpus.as_slice()).collect();
        let via_window = merge_window(&borrowed, 3);
        let via_owned = merge_shards(shards);
        assert_eq!(via_window.corpus, via_owned.corpus);
        assert_eq!(via_window.counts, via_owned.counts);
    }

    #[test]
    fn shards_round_trip_through_the_cache() {
        let dir = std::env::temp_dir().join(format!("darkvec-shard-test-{}", std::process::id()));
        let cache = ArtifactCache::new(&dir).unwrap();
        let trace = multi_day_trace();
        let services = ServiceMap::single();
        let keys: Vec<u64> = (100..100 + trace.days()).collect();
        let cold = build_shards(
            &trace,
            0,
            trace.days() - 1,
            &keys,
            &services,
            HOUR,
            Some(&cache),
            4,
        );
        let warm = build_shards(
            &trace,
            0,
            trace.days() - 1,
            &keys,
            &services,
            HOUR,
            Some(&cache),
            2,
        );
        assert_eq!(
            merge_shards(cold).corpus,
            merge_shards(warm).corpus,
            "cache round trip must not change the corpus"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_ranges_and_empty_days() {
        // A trace with one day of traffic queried over that single day.
        let trace = Trace::new(vec![Packet::new(Timestamp(10), ip(1), 23, Protocol::Tcp)]);
        let shards = build_shards(&trace, 0, 0, &[7], &ServiceMap::single(), HOUR, None, 8);
        assert_eq!(shards.len(), 1);
        let merged = merge_shards(shards);
        assert_eq!(merged.corpus, vec![vec![ip(1)]]);
        assert_eq!(merged.counts, vec![(ip(1), 1)]);
    }
}
