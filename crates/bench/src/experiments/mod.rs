//! One module per paper artifact. Every experiment takes the shared
//! [`crate::Ctx`] and returns the rendered text artifact (also mirrored to
//! `results/<id>.txt` by the `xp` binary).

pub mod ann;
pub mod baseline;
pub mod classes;
pub mod cluster_ablation;
pub mod clustering;
pub mod comparison;
pub mod dataset;
pub mod gt_extension;
pub mod incremental;
pub mod novelty;
pub mod perclass;
pub mod perf;
pub mod rasters;
pub mod scale;
pub mod serve;
pub mod services_xp;
pub mod transfer;
pub mod tuning;

use crate::Ctx;

/// All experiment ids, in the paper's presentation order.
pub const ALL: &[&str] = &[
    "table1",
    "fig1",
    "fig2",
    "table2",
    "fig3",
    "table6",
    "table3",
    "fig6",
    "fig7",
    "fig8",
    "table4",
    "fig9",
    "fig10",
    "fig11",
    "fig12_15",
    "table5",
    "table7",
    "gt_extend",
    "transfer",
    "cluster_ablation",
    "perf",
    "ann",
    "incremental",
    "novelty",
    "serve",
    "scale",
];

/// Runs one experiment by id; `None` for an unknown id.
pub fn run(ctx: &Ctx, id: &str) -> Option<String> {
    let out = match id {
        "table1" => dataset::table1(ctx),
        "fig1" => dataset::fig1(ctx),
        "fig2" => dataset::fig2(ctx),
        "table2" => classes::table2(ctx),
        "fig3" => classes::fig3(ctx),
        "table6" => baseline::table6(ctx),
        "table3" => comparison::table3(ctx),
        "fig6" => tuning::fig6(ctx),
        "fig7" => tuning::fig7(ctx),
        "fig8" => tuning::fig8(ctx),
        "table4" => perclass::table4(ctx),
        "fig9" => rasters::fig9(ctx),
        "fig10" => clustering::fig10(ctx),
        "fig11" => clustering::fig11(ctx),
        "fig12_15" => rasters::fig12_15(ctx),
        "table5" => clustering::table5(ctx),
        "table7" => services_xp::table7(ctx),
        "gt_extend" => gt_extension::gt_extend(ctx),
        "transfer" => transfer::transfer(ctx),
        "cluster_ablation" => cluster_ablation::cluster_ablation(ctx),
        "perf" => perf::perf(ctx),
        "ann" => ann::ann(ctx),
        "incremental" => incremental::incremental(ctx),
        "novelty" => novelty::novelty(ctx),
        "serve" => serve::serve(ctx),
        "scale" => scale::scale(ctx),
        _ => return None,
    };
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_id() {
        let ctx = Ctx::for_tests(90);
        // Cheap experiments only — expensive ones have their own tests.
        {
            let id = "table7";
            assert!(run(&ctx, id).is_some(), "{id} failed to run");
        }
        assert!(run(&ctx, "nope").is_none());
        assert_eq!(ALL.len(), 26);
    }
}
