//! Property-based tests for the traffic simulator's building blocks.

use darkvec_gen::mix::PortMix;
use darkvec_gen::schedule::{periodic_times, poisson, Schedule};
use darkvec_gen::{simulate, SimConfig};
use darkvec_types::PortKey;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn port_mix_samples_only_its_keys(ports in prop::collection::hash_set(1u16..60_000, 1..25), seed in 0u64..500) {
        let keys: Vec<PortKey> = ports.iter().map(|&p| PortKey::tcp(p)).collect();
        let mix = PortMix::uniform(keys.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = mix.sample(&mut rng);
            prop_assert!(keys.contains(&k));
        }
        // Weights sum to 1.
        let total: f64 = keys.iter().map(|&k| mix.weight(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn schedules_stay_in_window(start in 0u64..1_000_000, len in 1u64..1_000_000, seed in 0u64..500) {
        let end = start + len;
        let mut rng = StdRng::seed_from_u64(seed);
        let schedules = [
            Schedule::Continuous { rate_per_day: 50.0 },
            Schedule::Sporadic { pkts: (1, 20) },
            Schedule::Rounds {
                times: periodic_times(start % 7, 3_600, end),
                jitter: 60,
                pkts_per_round: (1, 3),
            },
            Schedule::Bursts {
                times: Arc::new(vec![start + len / 2]),
                spread: 600,
                pkts_per_burst: (1, 5),
            },
        ];
        for s in schedules {
            for t in s.realize(start, end, &mut rng) {
                prop_assert!(t >= start && t < end, "packet at {t} outside [{start},{end})");
            }
        }
    }

    #[test]
    fn poisson_is_nonnegative_and_scales(lambda in 0.0f64..500.0, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = poisson(lambda, &mut rng);
        // Soft bound: far tail beyond 10x the mean (+ slack) is a bug.
        prop_assert!((sample as f64) < 10.0 * lambda + 50.0, "lambda={lambda} sample={sample}");
    }

    #[test]
    fn simulation_invariants_hold_at_any_seed(seed in 0u64..12) {
        let cfg = SimConfig {
            days: 3,
            sender_scale: 0.01,
            rate_scale: 0.3,
            backscatter: true,
            seed,
        };
        let out = simulate(&cfg);
        // Sorted, bounded, every sender registered.
        prop_assert!(out.trace.packets().windows(2).all(|w| w[0].ts <= w[1].ts));
        if let Some(last) = out.trace.packets().last() {
            prop_assert!(last.ts.0 < cfg.horizon());
        }
        for ip in out.trace.senders() {
            prop_assert!(out.truth.campaign(ip).is_some());
        }
        // Labelling is total over trace senders.
        let labels = out.truth.label_trace(&out.trace);
        prop_assert_eq!(labels.len(), out.trace.senders().len());
    }
}
