//! Scan-campaign discovery: the §7 unsupervised workflow.
//!
//! Clusters the embedded senders with a k'-NN graph + Louvain, then prints
//! the per-cluster traffic evidence an analyst would read (dominant ports,
//! subnet concentration, regularity) — the workflow that surfaced
//! Shadowserver and the unknown1–8 campaigns in the paper.
//!
//! ```text
//! cargo run --release --example scan_campaign_discovery
//! ```

use darkvec::config::DarkVecConfig;
use darkvec::inspect::profile_clusters;
use darkvec::pipeline;
use darkvec::unsupervised::{cluster_embedding, dominant_labels, ClusterConfig};
use darkvec_gen::{simulate, SimConfig};
use std::collections::HashMap;

fn main() {
    let sim_cfg = SimConfig::tiny(7);
    println!("simulating darknet capture...");
    let sim = simulate(&sim_cfg);

    let mut cfg = DarkVecConfig::default();
    cfg.w2v.dim = 32;
    cfg.w2v.epochs = 8;
    println!("training DarkVec embedding...");
    let model = pipeline::run(&sim.trace, &cfg);

    println!(
        "clustering {} embedded senders (k'=3 + Louvain)...",
        model.embedding.len()
    );
    let clustering = cluster_embedding(&model.embedding, &ClusterConfig::default());
    println!(
        "  {} clusters, modularity {:.3}\n",
        clustering.clusters, clustering.modularity
    );

    // Hidden truth, for annotation only — a real analyst would not have it.
    let truth: HashMap<_, _> = sim
        .trace
        .senders()
        .into_iter()
        .filter_map(|ip| sim.truth.campaign(ip).map(|c| (ip, c)))
        .collect();
    let dominants = dominant_labels(&clustering, &model.embedding, &truth);

    let profiles = profile_clusters(&sim.trace, &model.embedding, &clustering);
    println!("clusters with strong cohesion (silhouette > 0.3, >= 5 members):\n");
    for p in &profiles {
        if p.silhouette <= 0.3 || p.ips < 5 {
            continue;
        }
        println!("{}", p.summary());
        // Subnet evidence, like the paper's unknown1 ("same /24 subnet").
        if p.subnets24 == 1 && p.ips > 3 {
            println!("   -> all members in ONE /24: coordinated infrastructure");
        } else if p.subnets16 == 1 && p.subnets24 > 1 {
            println!(
                "   -> {} /24s inside one /16: one operator, many blocks",
                p.subnets24
            );
        }
        match p.regularity {
            darkvec::temporal::Regularity::Daily => println!("   -> regular daily pattern"),
            darkvec::temporal::Regularity::Hourly => {
                println!("   -> very regular hourly pattern (cv={:.2})", p.hourly_cv)
            }
            darkvec::temporal::Regularity::Growing => {
                println!(
                    "   -> activity ramping up (growth {:.3}/h): worm-like",
                    p.growth
                )
            }
            darkvec::temporal::Regularity::Irregular => {}
        }
        if let Some((campaign, purity)) = &dominants[p.cluster as usize] {
            println!(
                "   [hidden truth: {campaign}, purity {:.0}%]",
                purity * 100.0
            );
        }
        println!();
    }
}
