//! Online novelty detection benchmark: inject synthetic novel groups at
//! known onset days, run the sliding-window pipeline with cluster lineage
//! tracking, and score how fast and how precisely the tracker alerts.
//!
//! The monitoring question behind `darkvec::lineage`: when a brand-new
//! coordinated group appears in the darknet, how many windows pass before
//! the lineage tracker raises a novelty alert, and how many of its alerts
//! are real? The simulator answers it with ground truth the real capture
//! cannot provide:
//!
//! 1. build the base campaign list, then append
//!    [`darkvec_gen::inject_group`] campaigns with known onset days —
//!    appending is non-perturbing, and the injected senders label
//!    [`GtClass::Unknown`] by construction;
//! 2. slide the training window over the injected capture
//!    ([`run_sliding`] with clustering), feed every window's clusters to a
//!    [`LineageTracker`] with dominant ground-truth labels attached;
//! 3. attribute each alert: **true positive** iff the alerted cluster is
//!    majority-injected. Per group, the detection window is the first
//!    alert touching its members; the **day lag** counts windows between
//!    the first window that could have seen the onset and the one that
//!    alerted.
//!
//! Gates (asserted, CI runs this in smoke mode): every injected group is
//! detected within [`LAG_GATE_WINDOWS`] window of its first visible
//! window, and alert precision is at least [`PRECISION_GATE`]. Writes
//! `BENCH_novelty.json` (repo root in a full run, the artifact directory
//! in smoke mode).

use crate::table::TextTable;
use crate::Ctx;
use darkvec::config::SlidingWindow;
use darkvec::incremental::{run_sliding, IncrementalOptions};
use darkvec::inspect::profile_clusters;
use darkvec::lineage::{ClusterObservation, LineageConfig, LineageTracker};
use darkvec_gen::address_space::AddressAllocator;
use darkvec_gen::campaigns::build_all;
use darkvec_gen::{inject_group, realize, CampaignId, GtClass, InjectedGroup};
use darkvec_obs::Json;
use darkvec_types::{Ipv4, Timestamp, DAY};
use std::collections::{HashMap, HashSet};

/// k of the per-window k′-NN clustering graph.
const CLUSTER_K: usize = 4;

/// Maximum windows between a group's first visible window and its alert.
const LAG_GATE_WINDOWS: i64 = 1;

/// Minimum fraction of alerts that must be majority-injected.
const PRECISION_GATE: f64 = 0.9;

/// An alert's cluster is attributed to the injection iff at least this
/// fraction of its members are injected senders.
const ATTRIBUTION_SHARE: f64 = 0.5;

/// Per-window tally for the report.
struct WindowRow {
    start_day: u64,
    end_day: u64,
    senders: usize,
    clusters: usize,
    alerts: usize,
    true_alerts: usize,
}

/// Detection verdict for one injected group.
struct GroupScore {
    spec: InjectedGroup,
    /// Index of the first window whose span covers the onset day.
    expected_window: Option<usize>,
    /// Index of the window whose alert first touched the group.
    detected_window: Option<usize>,
    /// `detected - expected`, in windows.
    lag_windows: Option<i64>,
}

impl GroupScore {
    fn detected_in_time(&self) -> bool {
        matches!(self.lag_windows, Some(lag) if (0..=LAG_GATE_WINDOWS).contains(&lag))
    }
}

/// Runs the injection + lineage pass and writes `BENCH_novelty.json`.
pub fn novelty(ctx: &Ctx) -> String {
    // Onsets sit past the tracker's burn-in windows (the tracker never
    // alerts there) and the member counts clear the clustering minimums
    // at each scale.
    let (window_days, stride, specs) = if ctx.smoke {
        (
            3u64,
            1u64,
            vec![
                InjectedGroup {
                    group: 0,
                    onset_day: 4,
                    senders: 10,
                    port: 7547,
                },
                InjectedGroup {
                    group: 1,
                    onset_day: 6,
                    senders: 8,
                    port: 5555,
                },
            ],
        )
    } else {
        (
            5u64,
            3u64,
            vec![
                InjectedGroup {
                    group: 0,
                    onset_day: 11,
                    senders: 24,
                    port: 7547,
                },
                InjectedGroup {
                    group: 1,
                    onset_day: 20,
                    senders: 16,
                    port: 5555,
                },
            ],
        )
    };

    // The shared disk trace cache (Ctx::sim) is keyed by the scale
    // parameters alone, so the injected variant of the capture must be
    // built here, never through ctx.trace().
    let sim_cfg = ctx.sim_cfg.clone();
    let mut alloc = AddressAllocator::new();
    let mut campaigns = build_all(&sim_cfg, &mut alloc);
    for spec in &specs {
        campaigns.push(inject_group(&sim_cfg, &mut alloc, spec));
    }
    let out = realize(&sim_cfg, &campaigns);
    let injected_groups: Vec<HashSet<Ipv4>> = specs
        .iter()
        .map(|s| {
            out.truth
                .members(CampaignId::Injected(s.group))
                .into_iter()
                .collect()
        })
        .collect();
    let injected_all: HashSet<Ipv4> = injected_groups.iter().flatten().copied().collect();
    let gt_labels = out.truth.label_trace(&out.trace);

    // Slide the window, cold-retraining each step: fresh senders need
    // full epochs to train their (randomly initialised) vectors away
    // from the established population before clustering can see them.
    let mut cfg = ctx.default_config();
    cfg.window = SlidingWindow {
        days: window_days,
        stride,
    };
    let opts = IncrementalOptions {
        warm_epochs: 0,
        cluster_k: Some(CLUSTER_K),
        shard_threads: 0,
    };
    let steps = run_sliding(&out.trace, &cfg, &opts, None);

    // Feed every window's clusters to the tracker, dominant ground-truth
    // labels attached, and attribute the alerts it raises.
    // Two burn-in windows: the simulated darknet has campaigns whose
    // membership grows over the capture (the ADB worm), and their first
    // post-baseline arrival wave founds the "young" lineage that later
    // waves continue. Judging novelty from window 2 on gives those
    // lineages one window to settle.
    let tracker_cfg = LineageConfig {
        baseline_windows: 2,
        ..LineageConfig::default()
    };
    let mut tracker = LineageTracker::new(tracker_cfg);
    let mut rows: Vec<WindowRow> = Vec::new();
    let mut total_alerts = 0usize;
    let mut true_alerts = 0usize;
    // (window index, lineage id, size, member set) per alert.
    let mut alert_log: Vec<(usize, u64, usize, HashSet<Ipv4>)> = Vec::new();
    for (wi, s) in steps.iter().enumerate() {
        let mut row = WindowRow {
            start_day: s.start_day,
            end_day: s.end_day,
            senders: s.model.embedding.len(),
            clusters: 0,
            alerts: 0,
            true_alerts: 0,
        };
        if let Some(clustering) = s.clustering.as_ref() {
            let emb = &s.model.embedding;
            let wtrace = out.trace.slice_time(
                Timestamp(s.start_day * DAY),
                Timestamp((s.end_day + 1) * DAY),
            );
            let profiles = profile_clusters(&wtrace, emb, clustering);
            let observations: Vec<ClusterObservation> = clustering
                .members(emb)
                .into_iter()
                .enumerate()
                .map(|(c, group)| observation(c, group, emb, &profiles, &gt_labels))
                .collect();
            row.clusters = observations.len();
            // Freshness presence: every sender in the window's raw
            // traffic, so sub-threshold sporadics never read as novel.
            let present: Vec<Ipv4> = wtrace.senders().into_iter().collect();
            let alerts =
                tracker.observe_with_presence((s.start_day, s.end_day), &observations, &present);
            for a in &alerts {
                let members: HashSet<Ipv4> = observations[a.cluster as usize]
                    .members
                    .iter()
                    .copied()
                    .collect();
                let injected = members
                    .iter()
                    .filter(|ip| injected_all.contains(ip))
                    .count();
                let tp = injected as f64 >= ATTRIBUTION_SHARE * members.len() as f64;
                row.alerts += 1;
                if tp {
                    row.true_alerts += 1;
                }
                alert_log.push((wi, a.lineage, a.size, members));
            }
        }
        total_alerts += row.alerts;
        true_alerts += row.true_alerts;
        rows.push(row);
    }

    // Score each injected group: the first window whose span reaches the
    // onset day could have detected it; the first true-positive alert
    // touching its members did.
    let scores: Vec<GroupScore> = specs
        .iter()
        .zip(&injected_groups)
        .map(|(spec, members)| {
            let expected = steps.iter().position(|s| s.end_day >= spec.onset_day);
            let detected = alert_log
                .iter()
                .filter(|(_, _, _, alerted)| {
                    let injected = alerted
                        .iter()
                        .filter(|ip| injected_all.contains(ip))
                        .count();
                    injected as f64 >= ATTRIBUTION_SHARE * alerted.len() as f64
                        && alerted.iter().any(|ip| members.contains(ip))
                })
                .map(|&(wi, _, _, _)| wi)
                .min();
            let lag = match (expected, detected) {
                (Some(e), Some(d)) => Some(d as i64 - e as i64),
                _ => None,
            };
            GroupScore {
                spec: *spec,
                expected_window: expected,
                detected_window: detected,
                lag_windows: lag,
            }
        })
        .collect();

    let detection_ok = scores.iter().all(GroupScore::detected_in_time);
    let precision = true_alerts as f64 / total_alerts.max(1) as f64;
    let precision_ok = total_alerts > 0 && precision >= PRECISION_GATE;

    // Render.
    let mut txt = format!(
        "Novelty detection: {} injected groups, window {window_days} days, stride {stride}, \
         k'={CLUSTER_K}, cold retrains\n\n",
        specs.len()
    );
    let mut t = TextTable::new(vec!["days", "senders", "clusters", "alerts", "true"]);
    for r in &rows {
        t.row(vec![
            format!("{}..={}", r.start_day, r.end_day),
            r.senders.to_string(),
            r.clusters.to_string(),
            r.alerts.to_string(),
            r.true_alerts.to_string(),
        ]);
    }
    txt.push_str(&t.render());
    txt.push('\n');
    let mut g = TextTable::new(vec![
        "group", "onset", "senders", "port", "expect-w", "detect-w", "lag[w]",
    ]);
    for s in &scores {
        g.row(vec![
            s.spec.group.to_string(),
            s.spec.onset_day.to_string(),
            s.spec.senders.to_string(),
            format!("{}/tcp", s.spec.port),
            s.expected_window.map_or("-".to_string(), |w| {
                format!("{}..={}", steps[w].start_day, steps[w].end_day)
            }),
            s.detected_window.map_or("missed".to_string(), |w| {
                format!("{}..={}", steps[w].start_day, steps[w].end_day)
            }),
            s.lag_windows.map_or("-".to_string(), |l| l.to_string()),
        ]);
    }
    txt.push_str(&g.render());
    txt.push_str(&format!(
        "\ndetection: every group alerted within {LAG_GATE_WINDOWS} window of first visibility: {}\n",
        pass(detection_ok)
    ));
    txt.push_str(&format!(
        "precision: {true_alerts}/{total_alerts} alerts majority-injected = {precision:.3} \
         (gate >= {PRECISION_GATE}: {})\n",
        pass(precision_ok)
    ));

    let dir = if ctx.smoke {
        ctx.out_dir.clone()
    } else {
        std::path::PathBuf::from(".")
    };
    let path = dir.join("BENCH_novelty.json");
    write_bench(
        ctx,
        &path,
        (window_days, stride),
        &rows,
        &scores,
        &steps,
        (total_alerts, true_alerts, precision, precision_ok),
        detection_ok,
    );
    txt.push_str(&format!("wrote {}\n", path.display()));

    darkvec_obs::manifest::attach(
        "novelty",
        Json::obj()
            .with("alerts", total_alerts as u64)
            .with("true_alerts", true_alerts as u64)
            .with("precision", precision)
            .with("detection_ok", detection_ok),
    );

    assert!(
        detection_ok,
        "novelty detection gate failed: a group was missed or alerted late (see {})",
        path.display()
    );
    assert!(
        precision_ok,
        "novelty precision gate failed: {precision:.3} < {PRECISION_GATE} (see {})",
        path.display()
    );
    txt
}

/// Builds one cluster's observation: mean-of-members centroid, dominant
/// non-Unknown ground-truth label (the share a real deployment would get
/// from fingerprints and published lists), inspect evidence from the
/// window's own traffic.
fn observation(
    c: usize,
    group: Vec<Ipv4>,
    emb: &darkvec_w2v::Embedding<Ipv4>,
    profiles: &[darkvec::inspect::ClusterProfile],
    gt_labels: &HashMap<Ipv4, GtClass>,
) -> ClusterObservation {
    let mut centroid = vec![0.0f32; emb.dim()];
    for ip in &group {
        if let Some(row) = emb.get(ip) {
            for (acc, &x) in centroid.iter_mut().zip(row) {
                *acc += x;
            }
        }
    }
    let n = group.len().max(1) as f32;
    for acc in &mut centroid {
        *acc /= n;
    }
    let mut counts: HashMap<GtClass, usize> = HashMap::new();
    for ip in &group {
        let class = gt_labels.get(ip).copied().unwrap_or(GtClass::Unknown);
        *counts.entry(class).or_insert(0) += 1;
    }
    // Deterministic dominant pick: by count, then label id — independent
    // of HashMap iteration order.
    let label = counts
        .iter()
        .filter(|(class, _)| **class != GtClass::Unknown)
        .max_by_key(|(class, &n)| (n, std::cmp::Reverse(class.label())))
        .map(|(class, &n)| (class.name().to_string(), n as f64 / group.len() as f64));
    let p = &profiles[c];
    ClusterObservation {
        cluster: c as u32,
        members: group,
        centroid,
        label,
        top_ports: p
            .top_ports
            .iter()
            .map(|(key, share)| (key.to_string(), *share))
            .collect(),
        regularity: p.regularity.name().to_string(),
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Writes the machine-readable benchmark file.
#[allow(clippy::too_many_arguments)]
fn write_bench(
    ctx: &Ctx,
    path: &std::path::Path,
    (window_days, stride): (u64, u64),
    rows: &[WindowRow],
    scores: &[GroupScore],
    steps: &[darkvec::incremental::DayOutcome],
    (total_alerts, true_alerts, precision, precision_ok): (usize, usize, f64, bool),
    detection_ok: bool,
) {
    let windows: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj()
                .with("start_day", r.start_day)
                .with("end_day", r.end_day)
                .with("senders", r.senders as u64)
                .with("clusters", r.clusters as u64)
                .with("alerts", r.alerts as u64)
                .with("true_alerts", r.true_alerts as u64)
        })
        .collect();
    let groups: Vec<Json> = scores
        .iter()
        .map(|s| {
            let mut j = Json::obj()
                .with("group", s.spec.group as u64)
                .with("onset_day", s.spec.onset_day)
                .with("senders", s.spec.senders as u64)
                .with("port", s.spec.port as u64)
                .with("detected", s.detected_window.is_some())
                .with("in_time", s.detected_in_time());
            if let Some(w) = s.expected_window {
                j = j.with("expected_window_end", steps[w].end_day);
            }
            if let Some(w) = s.detected_window {
                j = j.with("detected_window_end", steps[w].end_day);
            }
            if let Some(lag) = s.lag_windows {
                j = j.with("lag_windows", lag);
            }
            j
        })
        .collect();
    let json = Json::obj()
        .with("metric", "novelty_detection")
        .with("smoke", ctx.smoke)
        .with("window_days", window_days)
        .with("stride", stride)
        .with("cluster_k", CLUSTER_K as u64)
        .with("alerts", total_alerts as u64)
        .with("true_alerts", true_alerts as u64)
        .with("precision", precision)
        .with("gate_precision", PRECISION_GATE)
        .with("gate_precision_ok", precision_ok)
        .with("gate_lag_windows", LAG_GATE_WINDOWS)
        .with("gate_detection_ok", detection_ok)
        .with("groups", Json::Arr(groups))
        .with("windows", Json::Arr(windows));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, json.pretty()) {
        darkvec_obs::warn!("could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_novelty_detects_injected_groups_and_writes_bench() {
        let ctx = Ctx::for_tests(98);
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
        let out = novelty(&ctx);
        assert!(!out.contains("FAIL"), "{out}");
        assert!(!out.contains("missed"), "{out}");
        let raw = std::fs::read_to_string(ctx.out_dir.join("BENCH_novelty.json")).unwrap();
        assert!(raw.contains("\"gate_detection_ok\": true"), "{raw}");
        assert!(raw.contains("\"gate_precision_ok\": true"), "{raw}");
        assert!(raw.contains("\"smoke\": true"));
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }
}
