//! IPv4 addresses and CIDR subnets.
//!
//! Senders are identified by their source IPv4 address (§5.2: "We consider
//! each source IP address associated to an incoming packet to be a word").
//! Cluster inspection (§7.3) repeatedly groups senders by /24 and /16
//! prefixes, so [`Ipv4`] is a thin wrapper over the numeric address that
//! makes prefix arithmetic cheap.

use crate::error::{Error, Result};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as its 32-bit big-endian numeric value.
///
/// Ordering and hashing follow the numeric value, so sorting a sender list
/// groups addresses of the same subnet together.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from its four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// The /24 subnet containing this address.
    pub const fn slash24(self) -> Subnet {
        Subnet {
            base: Ipv4(self.0 & 0xFFFF_FF00),
            prefix: 24,
        }
    }

    /// The /16 subnet containing this address.
    pub const fn slash16(self) -> Subnet {
        Subnet {
            base: Ipv4(self.0 & 0xFFFF_0000),
            prefix: 16,
        }
    }

    /// The subnet of the given prefix length containing this address.
    ///
    /// # Panics
    /// Panics if `prefix > 32`.
    pub fn subnet(self, prefix: u8) -> Subnet {
        assert!(prefix <= 32, "prefix {prefix} out of range");
        Subnet {
            base: Ipv4(self.0 & Subnet::mask(prefix)),
            prefix,
        }
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4({self})")
    }
}

impl FromStr for Ipv4 {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let err = || Error::Parse {
            what: "ipv4",
            input: s.to_string(),
        };
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(err)?;
            // Reject empty / oversized / non-digit parts explicitly; u8::parse
            // already rejects values > 255 and signs.
            if part.is_empty() || part.len() > 3 {
                return Err(err());
            }
            *slot = part.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

impl From<std::net::Ipv4Addr> for Ipv4 {
    fn from(a: std::net::Ipv4Addr) -> Self {
        Ipv4(u32::from(a))
    }
}

impl From<Ipv4> for std::net::Ipv4Addr {
    fn from(a: Ipv4) -> Self {
        std::net::Ipv4Addr::from(a.0)
    }
}

/// A CIDR subnet: a base address and a prefix length.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Subnet {
    /// Base address; host bits are always zero.
    pub base: Ipv4,
    /// Prefix length in bits, `0..=32`.
    pub prefix: u8,
}

impl Subnet {
    /// Builds a subnet, zeroing any host bits in `base`.
    ///
    /// # Panics
    /// Panics if `prefix > 32`.
    pub fn new(base: Ipv4, prefix: u8) -> Self {
        base.subnet(prefix)
    }

    /// The netmask for a prefix length.
    pub const fn mask(prefix: u8) -> u32 {
        if prefix == 0 {
            0
        } else {
            u32::MAX << (32 - prefix)
        }
    }

    /// Whether `addr` falls inside this subnet.
    pub const fn contains(&self, addr: Ipv4) -> bool {
        addr.0 & Self::mask(self.prefix) == self.base.0
    }

    /// Number of addresses in the subnet (2^(32-prefix)).
    pub const fn size(&self) -> u64 {
        1u64 << (32 - self.prefix)
    }

    /// The `i`-th host address of the subnet.
    ///
    /// # Panics
    /// Panics if `i` is outside the subnet.
    pub fn host(&self, i: u64) -> Ipv4 {
        assert!(i < self.size(), "host index {i} outside /{}", self.prefix);
        Ipv4(self.base.0 + i as u32)
    }

    /// Iterates over every address in the subnet, in numeric order.
    pub fn hosts(&self) -> impl Iterator<Item = Ipv4> + '_ {
        (0..self.size()).map(|i| self.host(i))
    }
}

impl fmt::Display for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.prefix)
    }
}

impl fmt::Debug for Subnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Subnet({self})")
    }
}

impl FromStr for Subnet {
    type Err = Error;

    fn from_str(s: &str) -> Result<Self> {
        let err = || Error::Parse {
            what: "subnet",
            input: s.to_string(),
        };
        let (ip, prefix) = s.split_once('/').ok_or_else(err)?;
        let base: Ipv4 = ip.parse()?;
        let prefix: u8 = prefix.parse().map_err(|_| err())?;
        if prefix > 32 {
            return Err(err());
        }
        Ok(Subnet::new(base, prefix))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_round_trip() {
        let ip = Ipv4::new(130, 192, 5, 7);
        assert_eq!(ip.octets(), [130, 192, 5, 7]);
        assert_eq!(ip.to_string(), "130.192.5.7");
    }

    #[test]
    fn parse_valid() {
        let ip: Ipv4 = "10.0.0.1".parse().unwrap();
        assert_eq!(ip, Ipv4::new(10, 0, 0, 1));
        assert_eq!("255.255.255.255".parse::<Ipv4>().unwrap(), Ipv4(u32::MAX));
        assert_eq!("0.0.0.0".parse::<Ipv4>().unwrap(), Ipv4(0));
    }

    #[test]
    fn parse_invalid() {
        for bad in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "256.1.1.1",
            "a.b.c.d",
            "1..2.3",
            "-1.2.3.4",
            "01234.1.1.1",
        ] {
            assert!(bad.parse::<Ipv4>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn slash24_groups_neighbours() {
        let a = Ipv4::new(66, 240, 205, 3);
        let b = Ipv4::new(66, 240, 205, 250);
        let c = Ipv4::new(66, 240, 206, 3);
        assert_eq!(a.slash24(), b.slash24());
        assert_ne!(a.slash24(), c.slash24());
        assert_eq!(a.slash24().to_string(), "66.240.205.0/24");
    }

    #[test]
    fn slash16_groups_wider() {
        let a = Ipv4::new(184, 105, 1, 1);
        let b = Ipv4::new(184, 105, 200, 9);
        assert_eq!(a.slash16(), b.slash16());
        assert_eq!(a.slash16().prefix, 16);
    }

    #[test]
    fn subnet_contains_and_size() {
        let net: Subnet = "192.168.4.0/22".parse().unwrap();
        assert_eq!(net.size(), 1024);
        assert!(net.contains("192.168.7.255".parse().unwrap()));
        assert!(!net.contains("192.168.8.0".parse().unwrap()));
    }

    #[test]
    fn subnet_new_zeroes_host_bits() {
        let net = Subnet::new(Ipv4::new(10, 1, 2, 77), 24);
        assert_eq!(net.base, Ipv4::new(10, 1, 2, 0));
    }

    #[test]
    fn subnet_hosts_enumeration() {
        let net = Subnet::new(Ipv4::new(10, 0, 0, 0), 30);
        let hosts: Vec<_> = net.hosts().collect();
        assert_eq!(hosts.len(), 4);
        assert_eq!(hosts[0], Ipv4::new(10, 0, 0, 0));
        assert_eq!(hosts[3], Ipv4::new(10, 0, 0, 3));
    }

    #[test]
    fn subnet_parse_invalid() {
        for bad in ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/", "/24", "10.0.0/24"] {
            assert!(bad.parse::<Subnet>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn mask_edge_cases() {
        assert_eq!(Subnet::mask(0), 0);
        assert_eq!(Subnet::mask(32), u32::MAX);
        assert_eq!(Subnet::mask(24), 0xFFFF_FF00);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn host_out_of_range_panics() {
        Subnet::new(Ipv4::new(10, 0, 0, 0), 24).host(256);
    }

    #[test]
    fn std_conversion_round_trip() {
        let ip = Ipv4::new(8, 8, 4, 4);
        let std: std::net::Ipv4Addr = ip.into();
        assert_eq!(Ipv4::from(std), ip);
    }
}
