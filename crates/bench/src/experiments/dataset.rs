//! Dataset-overview artifacts: Table 1 and Figures 1–2.

use crate::table::{count, f, pct, TextTable};
use crate::Ctx;
use darkvec_types::stats::{rank_cumulative, Ecdf};
use darkvec_types::{Trace, TraceStats};

/// Table 1 — single-day and complete dataset statistics.
pub fn table1(ctx: &Ctx) -> String {
    let trace = ctx.trace();
    let full = trace.stats();
    let last = trace.last_day().stats();

    let mut out = String::from("Table 1: dataset statistics (simulated capture)\n\n");
    let mut t = TextTable::new(vec!["source", "days", "sources", "packets", "ports"]);
    t.row(vec![
        "30 days".to_string(),
        full.days.to_string(),
        count(full.sources as u64),
        count(full.packets as u64),
        count(full.ports as u64),
    ]);
    t.row(vec![
        "last day".to_string(),
        "1".to_string(),
        count(last.sources as u64),
        count(last.packets as u64),
        count(last.ports as u64),
    ]);
    out.push_str(&t.render());

    out.push_str("\nTop-3 TCP ports:\n");
    let mut top = TextTable::new(vec!["source", "port", "traffic %", "sources"]);
    let mut add_rows = |label: &str, stats: &TraceStats| {
        for p in &stats.top_tcp {
            top.row(vec![
                label.to_string(),
                p.port.to_string(),
                f(p.traffic_pct, 2),
                count(p.sources as u64),
            ]);
        }
    };
    add_rows("30 days", &full);
    add_rows("last day", &last);
    out.push_str(&top.render());
    out
}

/// Figure 1 — (a) ECDF of packets per port with the top-14 inset,
/// (b) the sender-activity raster (emitted as a per-day summary plus a
/// full CSV artifact).
pub fn fig1(ctx: &Ctx) -> String {
    let trace = ctx.trace();
    let ports = trace.port_counter();

    let mut out = String::from("Figure 1a: port ranking (packets per port)\n\n");
    let ranked = rank_cumulative(&ports);
    // ECDF of per-port packet counts at log-spaced ranks.
    let mut t = TextTable::new(vec!["port rank", "port", "packets", "cum. traffic"]);
    let n = ranked.len();
    let mut marks: Vec<usize> = vec![0, 1, 2, 4, 9, 13];
    let mut m = 20;
    while m < n {
        marks.push(m);
        m *= 3;
    }
    if n > 0 {
        marks.push(n - 1);
    }
    marks.dedup();
    for &r in marks.iter().filter(|&&r| r < n) {
        let (key, pkts, cum) = &ranked[r];
        t.row(vec![
            (r + 1).to_string(),
            key.to_string(),
            count(*pkts),
            pct(*cum),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\nTop-14 ports (Figure 1a inset):\n");
    let mut inset = TextTable::new(vec!["rank", "port", "traffic share"]);
    for (i, (key, pkts, _)) in ranked.iter().take(14).enumerate() {
        inset.row(vec![
            (i + 1).to_string(),
            key.to_string(),
            pct(*pkts as f64 / trace.len().max(1) as f64),
        ]);
    }
    out.push_str(&inset.render());

    // Figure 1b: raster summary + artifact.
    out.push_str(&format!(
        "\nFigure 1b: sender activity over time — {} senders; full raster in fig1b_raster.csv\n",
        trace.senders().len()
    ));
    let mut summary = TextTable::new(vec!["day", "packets", "active senders", "new senders"]);
    let mut seen = std::collections::HashSet::new();
    for day in 0..trace.days() {
        let slice = trace.day_slice(day);
        let day_senders: std::collections::HashSet<_> = slice.iter().map(|p| p.src).collect();
        let new = day_senders.iter().filter(|ip| !seen.contains(*ip)).count();
        seen.extend(day_senders.iter().copied());
        summary.row(vec![
            day.to_string(),
            count(slice.len() as u64),
            count(day_senders.len() as u64),
            count(new as u64),
        ]);
    }
    out.push_str(&summary.render());
    ctx.write_artifact("fig1b_raster.csv", &raster_csv(trace));
    out
}

/// Figure 2 — (a) ECDF of packets per sender + the 10-packet filter,
/// (b) cumulative distinct senders over time, unfiltered vs filtered.
pub fn fig2(ctx: &Ctx) -> String {
    let trace = ctx.trace();
    let per_sender = trace.packets_per_sender();
    let ecdf = Ecdf::from_counts(&per_sender.values());

    let mut out = String::from("Figure 2a: ECDF of monthly packets per sender\n\n");
    let mut t = TextTable::new(vec!["packets <=", "fraction of senders"]);
    for x in [1.0, 2.0, 5.0, 9.0, 10.0, 50.0, 100.0, 1_000.0, 10_000.0] {
        t.row(vec![format!("{x:.0}"), f(ecdf.eval(x), 3)]);
    }
    out.push_str(&t.render());

    let singles = per_sender.iter().filter(|&(_, c)| c == 1).count();
    let active = trace.active_senders(10);
    let active_trace = trace.filter_active(10);
    out.push_str(&format!(
        "\nseen exactly once: {} ({}); active (>=10 pkts): {} ({}) carrying {} of traffic\n",
        count(singles as u64),
        pct(singles as f64 / per_sender.distinct().max(1) as f64),
        count(active.len() as u64),
        pct(active.len() as f64 / per_sender.distinct().max(1) as f64),
        pct(active_trace.len() as f64 / trace.len().max(1) as f64),
    ));

    out.push_str("\nFigure 2b: cumulative distinct senders per day\n\n");
    let mut t = TextTable::new(vec!["day", "unfiltered", "filtered (active)"]);
    let unfiltered = trace.cumulative_senders_per_day();
    let filtered = active_trace.cumulative_senders_per_day();
    for (day, cum) in unfiltered.iter().enumerate() {
        t.row(vec![
            day.to_string(),
            count(*cum as u64),
            count(filtered.get(day).copied().unwrap_or(0) as u64),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// The Figure 1b raster as CSV: sender index (by first appearance), day,
/// packets that day.
fn raster_csv(trace: &Trace) -> String {
    use std::collections::HashMap;
    let mut first_seen: HashMap<darkvec_types::Ipv4, usize> = HashMap::new();
    let mut order = 0usize;
    let mut cells: HashMap<(usize, u64), u64> = HashMap::new();
    for p in trace.packets() {
        let idx = *first_seen.entry(p.src).or_insert_with(|| {
            let i = order;
            order += 1;
            i
        });
        *cells.entry((idx, p.ts.day())).or_insert(0) += 1;
    }
    let mut rows: Vec<((usize, u64), u64)> = cells.into_iter().collect();
    rows.sort();
    let mut out = String::from("sender_index,day,packets\n");
    for ((idx, day), pkts) in rows {
        out.push_str(&format!("{idx},{day},{pkts}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reports_both_spans() {
        let ctx = Ctx::for_tests(41);
        let out = table1(&ctx);
        assert!(out.contains("30 days"));
        assert!(out.contains("last day"));
        assert!(out.contains("Top-3 TCP ports"));
        // Telnet must rank among top TCP ports at any scale.
        assert!(out.contains("23"), "{out}");
    }

    #[test]
    fn fig2_reports_filter_effect() {
        let ctx = Ctx::for_tests(42);
        let out = fig2(&ctx);
        assert!(out.contains("active (>=10 pkts)"));
        assert!(out.contains("Figure 2b"));
    }

    #[test]
    fn raster_csv_covers_all_senders() {
        let ctx = Ctx::for_tests(43);
        let csv = raster_csv(ctx.trace());
        let senders: std::collections::HashSet<&str> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').next().unwrap())
            .collect();
        assert_eq!(senders.len(), ctx.trace().senders().len());
    }
}
