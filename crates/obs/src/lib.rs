//! # darkvec-obs
//!
//! The observability layer of the DarkVec workspace: **std-only, zero
//! external dependencies**, threaded through every pipeline stage.
//!
//! Three facilities, one per module:
//!
//! * [`log`] — a leveled logger (`error!`/`warn!`/`info!`/`debug!`)
//!   controlled by the `DARKVEC_LOG` environment variable or
//!   [`log::set_level`]; replaces ad-hoc `eprintln!` diagnostics.
//! * [`span`] — hierarchical timed spans: `let _g = span!("corpus");`
//!   records wall time into a per-process span tree on guard drop.
//!   Repeated spans with the same name under the same parent aggregate
//!   (count + total time), so per-window instrumentation stays readable.
//! * [`metrics`] — a global registry of monotonically increasing
//!   counters, float gauges, and log₂-bucketed histograms, all built on
//!   atomics and cheap enough to bump from Hogwild workers.
//!
//! [`manifest`] ties them together: a [`manifest::ManifestBuilder`]
//! snapshots the span tree and metrics registry into a JSON **run
//! manifest** under `results/manifests/`, giving every CLI command and
//! every `xp` experiment a machine-readable perf/quality record. [`json`]
//! is the tiny JSON writer backing it (the workspace's serde is an inert
//! offline stub, so manifests are emitted by hand).
//!
//! ```
//! use darkvec_obs::{info, metrics, span};
//!
//! darkvec_obs::log::init_from_env();
//! let _run = span!("my_stage");
//! metrics::counter("my_stage.items").add(42);
//! info!("stage finished");
//! ```

pub mod json;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod span;

pub use json::Json;
pub use log::Level;
pub use manifest::ManifestBuilder;
pub use span::SpanNode;
