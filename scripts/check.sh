#!/bin/sh
# Local CI: formatting, lints, and the test suite. Offline-friendly —
# everything runs with --offline against the vendored dependency stubs.
#
#   scripts/check.sh          # fmt + clippy + tests
#   scripts/check.sh --fast   # skip the (slow) workspace test run
set -eu
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> darkvec-lint (static analysis, see DESIGN.md section 14)"
cargo run -q -p darkvec-lint --offline

echo "==> cargo clippy --workspace"
cargo clippy --workspace --all-targets --offline -- -D warnings

if [ "${1:-}" = "--fast" ]; then
    echo "==> skipping tests (--fast)"
    exit 0
fi

echo "==> cargo test (workspace)"
cargo test -q --workspace --offline
