//! Cross-path parity: every dispatchable kernel must agree with the
//! scalar reference within 1e-5 relative error, on every path this
//! machine can execute, across awkward lengths (remainder tails) and
//! misaligned sub-slices (SIMD paths must not assume alignment).

use darkvec_kernels::{
    available_paths, axpy_on, dot_i8_on, dot_on, force_path, hogwild, normalize_rows_on,
    scale_add_on, scale_on, squared_norm, Path,
};
use std::sync::atomic::{AtomicU32, Ordering};

/// Vector lengths exercising every tail case: below one lane, below one
/// 8-wide stride, one-off-a-stride, mid-size, and a prime well past the
/// unrolled 16-element stride.
const LENS: &[usize] = &[1, 7, 31, 50, 63, 257];

/// Byte offsets into an over-allocated buffer, so SIMD loads start off
/// the allocation's natural alignment.
const OFFSETS: &[usize] = &[0, 1, 3];

/// SplitMix64: a tiny seeded generator so this integration test needs no
/// dependencies (the crate under test is std-only).
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [-1, 1).
    fn f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (2.0 / (1u32 << 24) as f32) - 1.0
    }

    fn vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.f32()).collect()
    }

    /// Uniform over the full `i8` range, saturation boundaries included.
    fn vec_i8(&mut self, n: usize) -> Vec<i8> {
        (0..n).map(|_| self.next_u64() as i8).collect()
    }
}

/// Relative-error check at the tolerance the kernels guarantee.
fn assert_close(got: f32, want: f32, what: &str) {
    let tol = 1e-5 * want.abs().max(got.abs()).max(1.0);
    assert!(
        (got - want).abs() <= tol,
        "{what}: got {got}, want {want} (tol {tol})"
    );
}

fn assert_slices_close(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert_close(g, w, &format!("{what}[{i}]"));
    }
}

/// Paths to test against the scalar reference.
fn non_scalar_paths() -> Vec<Path> {
    available_paths()
        .into_iter()
        .filter(|&p| p != Path::Scalar)
        .collect()
}

#[test]
fn dot_matches_scalar_on_every_path() {
    let mut rng = Rng(11);
    for &len in LENS {
        for &off in OFFSETS {
            let a = rng.vec(len + off);
            let b = rng.vec(len + off);
            let want = dot_on(Path::Scalar, &a[off..], &b[off..]);
            for path in non_scalar_paths() {
                let got = dot_on(path, &a[off..], &b[off..]);
                assert_close(got, want, &format!("dot len={len} off={off} {path:?}"));
            }
        }
    }
}

/// The quantized dot is all-integer, so parity is *exact* equality — no
/// tolerance — across every path, length tail, and misaligned sub-slice.
#[test]
fn dot_i8_matches_scalar_bit_exactly_on_every_path() {
    let mut rng = Rng(88);
    for &len in LENS {
        for &off in OFFSETS {
            let a = rng.vec_i8(len + off);
            let b = rng.vec_i8(len + off);
            let want = dot_i8_on(Path::Scalar, &a[off..], &b[off..]);
            for path in non_scalar_paths() {
                let got = dot_i8_on(path, &a[off..], &b[off..]);
                assert_eq!(got, want, "dot_i8 len={len} off={off} {path:?}");
            }
        }
    }
}

/// Saturation boundaries: every combination of the extreme codes
/// (±127, and -128 which quantization never emits but the kernel must
/// still handle) accumulated over SIMD-width runs.
#[test]
fn dot_i8_saturation_boundaries() {
    for &len in LENS {
        for (va, vb) in [
            (127i8, 127i8),
            (127, -127),
            (-127, -127),
            (-128, 127),
            (-128, -128),
        ] {
            let a = vec![va; len];
            let b = vec![vb; len];
            let want = len as i32 * i32::from(va) * i32::from(vb);
            for path in available_paths() {
                assert_eq!(
                    dot_i8_on(path, &a, &b),
                    want,
                    "saturation {va}×{vb} len={len} {path:?}"
                );
            }
        }
    }
}

#[test]
fn axpy_matches_scalar_on_every_path() {
    let mut rng = Rng(22);
    for &len in LENS {
        for &off in OFFSETS {
            let x = rng.vec(len + off);
            let y0 = rng.vec(len + off);
            let alpha = rng.f32();
            let mut want = y0.clone();
            axpy_on(Path::Scalar, alpha, &x[off..], &mut want[off..]);
            for path in non_scalar_paths() {
                let mut got = y0.clone();
                axpy_on(path, alpha, &x[off..], &mut got[off..]);
                assert_slices_close(
                    &got[off..],
                    &want[off..],
                    &format!("axpy len={len} off={off} {path:?}"),
                );
            }
        }
    }
}

#[test]
fn scale_matches_scalar_on_every_path() {
    let mut rng = Rng(33);
    for &len in LENS {
        for &off in OFFSETS {
            let y0 = rng.vec(len + off);
            let alpha = rng.f32();
            let mut want = y0.clone();
            scale_on(Path::Scalar, &mut want[off..], alpha);
            for path in non_scalar_paths() {
                let mut got = y0.clone();
                scale_on(path, &mut got[off..], alpha);
                assert_slices_close(
                    &got[off..],
                    &want[off..],
                    &format!("scale len={len} off={off} {path:?}"),
                );
            }
        }
    }
}

#[test]
fn scale_add_matches_scalar_on_every_path() {
    let mut rng = Rng(44);
    for &len in LENS {
        for &off in OFFSETS {
            let x = rng.vec(len + off);
            let y0 = rng.vec(len + off);
            let alpha = rng.f32();
            let mut want = y0.clone();
            scale_add_on(Path::Scalar, &mut want[off..], alpha, &x[off..]);
            for path in non_scalar_paths() {
                let mut got = y0.clone();
                scale_add_on(path, &mut got[off..], alpha, &x[off..]);
                assert_slices_close(
                    &got[off..],
                    &want[off..],
                    &format!("scale_add len={len} off={off} {path:?}"),
                );
            }
        }
    }
}

#[test]
fn normalize_rows_matches_scalar_on_every_path() {
    let mut rng = Rng(55);
    for &dim in LENS {
        let rows = 5;
        let data = rng.vec(rows * dim);
        let mut want = data.clone();
        normalize_rows_on(Path::Scalar, &mut want, dim);
        for path in non_scalar_paths() {
            let mut got = data.clone();
            normalize_rows_on(path, &mut got, dim);
            assert_slices_close(&got, &want, &format!("normalize dim={dim} {path:?}"));
        }
        // Unit norms (except all-zero rows, which stay zero).
        for r in 0..rows {
            let n = squared_norm(&want[r * dim..(r + 1) * dim]).sqrt();
            assert_close(n, 1.0, &format!("row {r} norm, dim={dim}"));
        }
    }
}

#[test]
fn zero_rows_survive_normalization() {
    for path in available_paths() {
        let mut data = vec![0.0f32; 3 * 7];
        normalize_rows_on(path, &mut data, 7);
        assert!(data.iter().all(|&x| x == 0.0), "{path:?}");
    }
}

fn atomic_row(vals: &[f32]) -> Vec<AtomicU32> {
    vals.iter().map(|v| AtomicU32::new(v.to_bits())).collect()
}

fn plain_row(cells: &[AtomicU32]) -> Vec<f32> {
    cells
        .iter()
        .map(|c| f32::from_bits(c.load(Ordering::Relaxed)))
        .collect()
}

/// The hogwild kernels read the process-global active path, so this test
/// owns all `force_path` toggling in this binary (the slice kernels above
/// use the explicit `_on` variants and never touch the global state).
#[test]
fn hogwild_kernels_match_plain_kernels_on_every_path() {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            force_path(None);
        }
    }
    let _restore = Restore;

    let mut rng = Rng(66);
    for path in available_paths() {
        force_path(Some(path));
        for &len in LENS {
            let a = rng.vec(len);
            let b = rng.vec(len);
            let g = rng.f32();
            let ra = atomic_row(&a);
            let rb = atomic_row(&b);
            let what = format!("hogwild len={len} {path:?}");

            // load round-trips exactly.
            let mut out = vec![0.0f32; len];
            hogwild::load(&ra, &mut out);
            assert_eq!(out, a, "{what}: load");

            // dot against the scalar slice reference.
            let want = dot_on(Path::Scalar, &a, &b);
            assert_close(hogwild::dot(&ra, &b), want, &format!("{what}: dot"));
            assert_close(
                hogwild::dot_rows(&ra, &rb),
                want,
                &format!("{what}: dot_rows"),
            );

            // axpy: row += g * v.
            let mut want_row = a.clone();
            axpy_on(Path::Scalar, g, &b, &mut want_row);
            hogwild::axpy(&ra, g, &b);
            assert_slices_close(&plain_row(&ra), &want_row, &format!("{what}: axpy"));

            // axpy_rows: dst += g * src (dst currently == want_row).
            axpy_on(Path::Scalar, g, &b, &mut want_row);
            hogwild::axpy_rows(&ra, g, &rb);
            assert_slices_close(&plain_row(&ra), &want_row, &format!("{what}: axpy_rows"));

            // add: row += buf.
            for (w, &x) in want_row.iter_mut().zip(&b) {
                *w += x;
            }
            hogwild::add(&ra, &b);
            assert_slices_close(&plain_row(&ra), &want_row, &format!("{what}: add"));

            // accumulate: buf += g * row.
            let mut got_buf = b.clone();
            hogwild::accumulate(&mut got_buf, g, &rb);
            let mut want_buf = b.clone();
            axpy_on(Path::Scalar, g, &b, &mut want_buf);
            assert_slices_close(&got_buf, &want_buf, &format!("{what}: accumulate"));
        }
    }
}

/// Each path is internally deterministic: two runs over the same input
/// produce bit-identical results (the per-path reproducibility DESIGN.md
/// promises; cross-path bit-equality is explicitly *not* promised).
#[test]
fn each_path_is_bitwise_deterministic() {
    let mut rng = Rng(77);
    let a = rng.vec(257);
    let b = rng.vec(257);
    for path in available_paths() {
        let d1 = dot_on(path, &a, &b);
        let d2 = dot_on(path, &a, &b);
        assert_eq!(d1.to_bits(), d2.to_bits(), "{path:?}");
    }
}
