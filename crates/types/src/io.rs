//! Trace serialisation.
//!
//! Two formats are provided:
//!
//! * **CSV** — the shape of the anonymised dataset the paper releases
//!   (`timestamp,src,dst_port,proto,fingerprint`), human-inspectable and
//!   diff-friendly;
//! * **binary** — a length-prefixed little-endian format built on
//!   [`bytes`], ~4x smaller and ~20x faster to load, used to cache the
//!   simulator output between experiments.

use crate::error::{Error, Result};
use crate::ip::Ipv4;
use crate::packet::{Fingerprint, Packet};
use crate::port::Protocol;
use crate::time::Timestamp;
use crate::trace::Trace;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a binary trace ("DKVT" + version 1).
const MAGIC: &[u8; 4] = b"DKVT";
const VERSION: u8 = 1;

/// Writes a trace as CSV with a header line.
pub fn write_csv<W: Write>(trace: &Trace, out: W) -> Result<()> {
    let mut w = BufWriter::new(out);
    writeln!(w, "timestamp,src,dst_port,proto,fingerprint")?;
    for p in trace.packets() {
        let fp = match p.fingerprint {
            Fingerprint::None => "",
            Fingerprint::Mirai => "mirai",
        };
        writeln!(w, "{},{},{},{},{}", p.ts.0, p.src, p.dst_port, p.proto, fp)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a trace from CSV produced by [`write_csv`].
pub fn read_csv<R: Read>(input: R) -> Result<Trace> {
    let reader = BufReader::new(input);
    let mut packets = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if i == 0 {
            // Header; validate rather than silently skipping arbitrary data.
            if line != "timestamp,src,dst_port,proto,fingerprint" {
                return Err(Error::BadRecord {
                    line: 1,
                    reason: format!("unexpected header {line:?}"),
                });
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        let bad = |reason: String| Error::BadRecord {
            line: i + 1,
            reason,
        };
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 5 {
            return Err(bad(format!("expected 5 fields, got {}", fields.len())));
        }
        let ts: u64 = fields[0]
            .parse()
            .map_err(|e| bad(format!("timestamp: {e}")))?;
        let src: Ipv4 = fields[1].parse()?;
        let dst_port: u16 = fields[2].parse().map_err(|e| bad(format!("port: {e}")))?;
        let proto: Protocol = fields[3].parse()?;
        let fingerprint = match fields[4] {
            "" => Fingerprint::None,
            "mirai" => Fingerprint::Mirai,
            other => return Err(bad(format!("unknown fingerprint {other:?}"))),
        };
        packets.push(Packet {
            ts: Timestamp(ts),
            src,
            dst_port,
            proto,
            fingerprint,
        });
    }
    Ok(Trace::new(packets))
}

/// Encodes a trace into the binary format.
pub fn to_bytes(trace: &Trace) -> Bytes {
    // 16 bytes per packet: u64 ts + u32 src + u16 port + u8 proto + u8 fp.
    let mut buf = BytesMut::with_capacity(16 + trace.len() * 16);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(trace.len() as u64);
    for p in trace.packets() {
        buf.put_u64_le(p.ts.0);
        buf.put_u32_le(p.src.0);
        buf.put_u16_le(p.dst_port);
        buf.put_u8(p.proto.tag());
        buf.put_u8(match p.fingerprint {
            Fingerprint::None => 0,
            Fingerprint::Mirai => 1,
        });
    }
    buf.freeze()
}

/// Decodes a trace from the binary format.
pub fn from_bytes(mut buf: impl Buf) -> Result<Trace> {
    let err = |msg: &str| Error::BadBinary(msg.to_string());
    if buf.remaining() < 13 {
        return Err(err("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic"));
    }
    if buf.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let n = buf.get_u64_le() as usize;
    if buf.remaining() < n * 16 {
        return Err(err("truncated body"));
    }
    let mut packets = Vec::with_capacity(n);
    for _ in 0..n {
        let ts = Timestamp(buf.get_u64_le());
        let src = Ipv4(buf.get_u32_le());
        let dst_port = buf.get_u16_le();
        let proto = Protocol::from_tag(buf.get_u8()).ok_or_else(|| err("bad protocol tag"))?;
        let fingerprint = match buf.get_u8() {
            0 => Fingerprint::None,
            1 => Fingerprint::Mirai,
            _ => return Err(err("bad fingerprint tag")),
        };
        packets.push(Packet {
            ts,
            src,
            dst_port,
            proto,
            fingerprint,
        });
    }
    Ok(Trace::new(packets))
}

/// Writes a trace to a binary file.
pub fn save<P: AsRef<Path>>(trace: &Trace, path: P) -> Result<()> {
    std::fs::write(path, to_bytes(trace))?;
    Ok(())
}

/// Loads a trace from a binary file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace> {
    let data = std::fs::read(path)?;
    from_bytes(&data[..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::new(vec![
            Packet::new(Timestamp(10), Ipv4::new(10, 0, 0, 1), 445, Protocol::Tcp),
            Packet::mirai(Timestamp(20), Ipv4::new(10, 0, 0, 2), 23),
            Packet::new(Timestamp(30), Ipv4::new(10, 0, 0, 3), 0, Protocol::Icmp),
            Packet::new(Timestamp(40), Ipv4::new(10, 0, 0, 4), 53, Protocol::Udp),
        ])
    }

    #[test]
    fn csv_round_trip() {
        let t = sample();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn csv_rejects_bad_header() {
        assert!(read_csv("nope\n1,2,3,4,5\n".as_bytes()).is_err());
    }

    #[test]
    fn csv_rejects_short_record() {
        let data = "timestamp,src,dst_port,proto,fingerprint\n1,10.0.0.1,23\n";
        let err = read_csv(data.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn csv_rejects_unknown_fingerprint() {
        let data = "timestamp,src,dst_port,proto,fingerprint\n1,10.0.0.1,23,tcp,zmap\n";
        assert!(read_csv(data.as_bytes()).is_err());
    }

    #[test]
    fn csv_tolerates_trailing_blank_line() {
        let data = "timestamp,src,dst_port,proto,fingerprint\n1,10.0.0.1,23,tcp,\n\n";
        assert_eq!(read_csv(data.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn binary_round_trip() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes(&bytes[..]).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = to_bytes(&sample());
        for cut in [0, 4, 12, bytes.len() - 1] {
            assert!(
                from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = to_bytes(&sample()).to_vec();
        bytes[0] = b'X';
        assert!(from_bytes(&bytes[..]).is_err());
    }

    #[test]
    fn binary_empty_trace() {
        let t = Trace::default();
        assert_eq!(from_bytes(&to_bytes(&t)[..]).unwrap(), t);
    }

    #[test]
    fn file_round_trip() {
        let t = sample();
        let dir = std::env::temp_dir().join("darkvec-types-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.bin");
        save(&t, &path).unwrap();
        assert_eq!(load(&path).unwrap(), t);
        std::fs::remove_file(&path).ok();
    }
}
