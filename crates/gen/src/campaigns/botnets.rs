//! Botnet-style campaigns: the Mirai-like core (GT1) and the botnet-like
//! unknowns of §7.3.3 — the growing ADB worm (unknown4, Figure 15), the
//! Mirai-like extension with partial fingerprints (unknown5) and the SSH
//! brute-force bots (unknown6).

use super::{Campaign, SenderSpec};
use crate::address_space::AddressAllocator;
use crate::config::SimConfig;
use crate::mix::PortMix;
use crate::schedule::{periodic_times, random_times, Schedule};
use crate::truth::CampaignId;
use darkvec_types::{PortKey, DAY, HOUR, MINUTE};
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::Arc;

/// Builds all botnet campaigns.
pub fn build(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Vec<Campaign> {
    vec![
        mirai_core(cfg, alloc, rng),
        u5_mirai_ext(cfg, alloc, rng),
        u4_adb_worm(cfg, alloc, rng),
        u6_ssh(cfg, alloc, rng),
    ]
}

/// GT1 — the Mirai-like botnet(s): the paper sees 7 351 fingerprinted
/// senders on the last day, overwhelmingly on Telnet (Table 2: 23/tcp
/// 89.6 %, 2323/tcp 3.9 %, 5555/tcp 1.7 %, 26/tcp 1.3 %, 9530/tcp 0.84 %).
/// Infected hosts are scattered worldwide and churn: each sender is active
/// for a 5–14-day window, scanning continuously while infected.
fn mirai_core(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let n = cfg.scaled(7_351);
    let ips = alloc.random(n, rng);
    let mix = Arc::new(PortMix::with_tail(
        vec![
            (PortKey::tcp(23), 89.6),
            (PortKey::tcp(2323), 3.9),
            (PortKey::tcp(5555), 1.7),
            (PortKey::tcp(26), 1.3),
            (PortKey::tcp(9530), 0.84),
        ],
        70,
        0.0266,
        rng,
    ));
    let horizon = cfg.horizon();
    // Infection windows are 5-14 days on the paper's 30-day horizon; keep
    // the same *fraction* of the capture at shorter horizons so churn
    // (partial presence, Figure 1b's horizontal segments) survives scaling.
    let dur_lo = (horizon * 5 / 30).max(DAY).min(horizon);
    let dur_hi = (horizon * 14 / 30).clamp(dur_lo, horizon);
    let senders = ips
        .into_iter()
        .map(|ip| {
            let duration = rng.random_range(dur_lo..=dur_hi);
            let start = rng.random_range(0..=horizon.saturating_sub(duration));
            SenderSpec {
                ip,
                window: (start, start + duration),
                schedule: Schedule::Continuous {
                    rate_per_day: cfg.rate(12.0),
                },
                mix: mix.clone(),
                mirai_fingerprint: true,
            }
        })
        .collect();
    Campaign {
        id: CampaignId::MiraiCore,
        published_as: None,
        senders,
    }
}

/// unknown5 — 1 412 senders in 1 381 distinct /24s hitting Telnet in
/// lockstep; 71 % carry the Mirai fingerprint (and are therefore labelled
/// GT1 by the labelling procedure), 29 % do not and stay Unknown — the
/// cluster that "illustrates the usefulness of DarkVec in extending the
/// knowledge about botnets" (§7.3.3).
fn u5_mirai_ext(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let n = cfg.scaled(1_412);
    let ips = alloc.random(n, rng);
    let mix = Arc::new(PortMix::with_tail(
        vec![
            (PortKey::tcp(23), 87.7),
            (PortKey::tcp(2323), 2.0),
            (PortKey::udp(2000), 1.0),
        ],
        210,
        0.093,
        rng,
    ));
    let horizon = cfg.horizon();
    let times = periodic_times(rng.random_range(0..2 * HOUR), 2 * HOUR, horizon);
    let senders = ips
        .into_iter()
        .map(|ip| SenderSpec {
            ip,
            window: (0, horizon),
            schedule: Schedule::Rounds {
                times: times.clone(),
                jitter: 15 * MINUTE,
                pkts_per_round: (1, 3),
            },
            mix: mix.clone(),
            mirai_fingerprint: rng.random::<f64>() < 0.71,
        })
        .collect();
    Campaign {
        id: CampaignId::U5MiraiExt,
        published_as: None,
        senders,
    }
}

/// unknown4 — the ADB mass scan "like the spreading of an ADB worm"
/// (Figure 15): 525 senders, 75 % of traffic to 5555/tcp, with membership
/// *growing* over the capture (arrival density increases linearly, so the
/// cluster's activity ramps up exactly as the figure shows).
fn u4_adb_worm(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let n = cfg.scaled(525);
    let ips = alloc.random(n, rng);
    let mix = Arc::new(PortMix::with_tail(
        vec![(PortKey::tcp(5555), 75.0)],
        140,
        0.25,
        rng,
    ));
    let horizon = cfg.horizon();
    let times = periodic_times(rng.random_range(0..30 * MINUTE), 30 * MINUTE, horizon);
    let senders = ips
        .into_iter()
        .map(|ip| {
            // P(start <= t) = (t/h)^2: infection density grows linearly.
            let u: f64 = rng.random();
            let start = (horizon as f64 * u.sqrt()) as u64;
            let start = start.min(horizon.saturating_sub(DAY));
            SenderSpec {
                ip,
                window: (start, horizon),
                schedule: Schedule::Rounds {
                    times: times.clone(),
                    jitter: 10 * MINUTE,
                    pkts_per_round: (1, 2),
                },
                mix: mix.clone(),
                mirai_fingerprint: false,
            }
        })
        .collect();
    Campaign {
        id: CampaignId::U4AdbWorm,
        published_as: None,
        senders,
    }
}

/// unknown6 — SSH brute-force bots: 623 senders, 88 % of traffic to
/// 22/tcp, working in campaign-wide attempt waves (confirmed as
/// brute-forcers by the authors' honeypot).
fn u6_ssh(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let n = cfg.scaled(623);
    let ips = alloc.random(n, rng);
    let mix = Arc::new(PortMix::with_tail(
        vec![(PortKey::tcp(22), 88.0)],
        115,
        0.12,
        rng,
    ));
    let horizon = cfg.horizon();
    let n_waves = (cfg.days as usize).max(4);
    let times = random_times(n_waves, horizon, rng);
    let pkts_hi = ((20.0 * cfg.rate_scale).round() as u32).max(2);
    let senders = ips
        .into_iter()
        .map(|ip| SenderSpec {
            ip,
            window: (0, horizon),
            schedule: Schedule::Bursts {
                times: times.clone(),
                spread: 30 * MINUTE,
                pkts_per_burst: (pkts_hi / 2, pkts_hi),
            },
            mix: mix.clone(),
            mirai_fingerprint: false,
        })
        .collect();
    Campaign {
        id: CampaignId::U6Ssh,
        published_as: None,
        senders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn built() -> Vec<Campaign> {
        let cfg = SimConfig::tiny(2);
        build(
            &cfg,
            &mut AddressAllocator::new(),
            &mut StdRng::seed_from_u64(2),
        )
    }

    fn find(campaigns: &[Campaign], id: CampaignId) -> &Campaign {
        campaigns.iter().find(|c| c.id == id).unwrap()
    }

    use rand::SeedableRng;

    #[test]
    fn populations_scale() {
        let c = built();
        let cfg = SimConfig::tiny(2);
        assert_eq!(find(&c, CampaignId::MiraiCore).len(), cfg.scaled(7_351));
        assert_eq!(find(&c, CampaignId::U5MiraiExt).len(), cfg.scaled(1_412));
        assert_eq!(find(&c, CampaignId::U4AdbWorm).len(), cfg.scaled(525));
        assert_eq!(find(&c, CampaignId::U6Ssh).len(), cfg.scaled(623));
    }

    #[test]
    fn mirai_is_telnet_heavy_and_fingerprinted() {
        let c = built();
        let mirai = find(&c, CampaignId::MiraiCore);
        let mix = &mirai.senders[0].mix;
        assert!(mix.weight(PortKey::tcp(23)) > 0.85);
        assert!(mirai.senders.iter().all(|s| s.mirai_fingerprint));
    }

    #[test]
    fn mirai_senders_churn() {
        let c = built();
        let mirai = find(&c, CampaignId::MiraiCore);
        let horizon = SimConfig::tiny(2).horizon();
        let mut full_month = 0;
        for s in &mirai.senders {
            assert!(s.window.1 - s.window.0 <= horizon * 14 / 30 + 1);
            if s.window == (0, horizon) {
                full_month += 1;
            }
        }
        assert!(
            full_month < mirai.len() / 2,
            "most senders should have partial windows"
        );
    }

    #[test]
    fn adb_worm_grows() {
        let c = built();
        let worm = find(&c, CampaignId::U4AdbWorm);
        let horizon = SimConfig::tiny(2).horizon();
        let early = worm
            .senders
            .iter()
            .filter(|s| s.window.0 < horizon / 2)
            .count();
        let late = worm.len() - early;
        // Quadratic arrival CDF => ~25% arrive in the first half.
        assert!(
            late > early,
            "worm should grow: {early} early vs {late} late"
        );
        assert!(worm.senders[0].mix.weight(PortKey::tcp(5555)) > 0.7);
    }

    #[test]
    fn u5_mix_of_fingerprints() {
        let c = built();
        let u5 = find(&c, CampaignId::U5MiraiExt);
        let fp = u5.senders.iter().filter(|s| s.mirai_fingerprint).count();
        assert!(
            fp > 0 && fp < u5.len(),
            "u5 must mix fingerprinted and clean senders"
        );
    }

    #[test]
    fn ssh_bots_target_ssh() {
        let c = built();
        let u6 = find(&c, CampaignId::U6Ssh);
        assert!(u6.senders[0].mix.weight(PortKey::tcp(22)) > 0.8);
        assert!(matches!(u6.senders[0].schedule, Schedule::Bursts { .. }));
    }

    #[test]
    fn botnets_are_never_published() {
        for c in built() {
            assert_eq!(
                c.published_as, None,
                "{} must not be on a scanner list",
                c.id
            );
        }
    }
}
