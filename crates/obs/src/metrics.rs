//! Global metrics registry: counters, gauges, and HDR histograms.
//!
//! Handles are `&'static` and lock-free to bump, so hot loops (Hogwild
//! workers, per-packet filters) can update them without contention on
//! anything but the cache line of the atomic itself. Registration
//! (first use of a name) takes a mutex; steady-state lookups are
//! read-mostly and callers are expected to cache the handle:
//!
//! ```
//! use darkvec_obs::metrics;
//! let tokens = metrics::counter("corpus.tokens");
//! for _ in 0..1000 {
//!     tokens.add(1);
//! }
//! assert!(tokens.get() >= 1000);
//! ```
//!
//! Histograms use the sub-bucketed log₂ layout from [`crate::hdr`], so
//! [`Histogram::quantile`] answers p50/p90/p99/p99.9 with a bounded
//! relative error (≤ [`crate::hdr::MAX_RELATIVE_ERROR`]) instead of the
//! up-to-2× slop of plain power-of-two buckets.
//!
//! [`record_sample`] additionally appends a timestamped snapshot of all
//! counters and gauges to a bounded in-process buffer; the trace
//! exporter turns those into Chrome counter tracks.

// lint: relaxed-ok(this module IS the metrics-counter registry: counters are monotonic u64 sums scraped for display, never synchronize other memory)

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::hdr;

/// A monotonically increasing integer metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating point metric (rates, alphas, ratios).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A histogram over `u64` samples with HDR-style sub-bucketed log₂
/// buckets (see [`crate::hdr`] for the layout and error bound).
///
/// Values below [`hdr::SUB`] (32) are recorded exactly; larger values
/// land in a bucket no wider than `value / 32`, so quantile estimates
/// are accurate to ≤ 1.6% relative error. Designed for latencies in ns
/// and batch sizes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; hdr::BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; hdr::BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index a sample falls into (re-exported from [`hdr`]).
pub fn bucket_index(value: u64) -> usize {
    hdr::bucket_index(value)
}

/// The inclusive lower bound of bucket `i` (re-exported from [`hdr`]).
pub fn bucket_floor(index: usize) -> u64 {
    hdr::bucket_floor(index)
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[hdr::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a [`Duration`] sample in nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample recorded (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Quantile estimate (`q` in `[0, 1]`), within the documented
    /// relative-error bound of the exact sample at that rank. Returns 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let buckets = self.nonzero_buckets();
        let total = buckets.iter().map(|&(_, n)| n).sum();
        hdr::quantile_from_buckets(&buckets, total, q)
    }

    /// `(p50, p90, p99, p99.9)` in one pass.
    pub fn percentiles(&self) -> (u64, u64, u64, u64) {
        let buckets = self.nonzero_buckets();
        let total = buckets.iter().map(|&(_, n)| n).sum();
        (
            hdr::quantile_from_buckets(&buckets, total, 0.50),
            hdr::quantile_from_buckets(&buckets, total, 0.90),
            hdr::quantile_from_buckets(&buckets, total, 0.99),
            hdr::quantile_from_buckets(&buckets, total, 0.999),
        )
    }

    /// `(bucket_floor, count)` for every non-empty bucket, ascending.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((hdr::bucket_floor(i), n))
            })
            .collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, &'static Counter>,
    gauges: BTreeMap<String, &'static Gauge>,
    histograms: BTreeMap<String, &'static Histogram>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(RegistryInner::default()))
}

/// The counter registered under `name`, creating it on first use.
///
/// Metric objects are leaked intentionally: the registry lives for the
/// whole process and handles must be `&'static` to be cheap to share.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(c) = reg.counters.get(name) {
        return c;
    }
    let c: &'static Counter = Box::leak(Box::default());
    reg.counters.insert(name.to_string(), c);
    c
}

/// The gauge registered under `name`, creating it on first use.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(g) = reg.gauges.get(name) {
        return g;
    }
    let g: &'static Gauge = Box::leak(Box::default());
    reg.gauges.insert(name.to_string(), g);
    g
}

/// The histogram registered under `name`, creating it on first use.
pub fn histogram(name: &str) -> &'static Histogram {
    let mut reg = registry().lock().expect("metrics registry poisoned");
    if let Some(h) = reg.histograms.get(name) {
        return h;
    }
    let h: &'static Histogram = Box::leak(Box::default());
    reg.histograms.insert(name.to_string(), h);
    h
}

/// A histogram snapshot: `(count, sum, nonzero (floor, count) buckets)`.
pub type HistogramSnapshot = (u64, u64, Vec<(u64, u64)>);

/// A point-in-time copy of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Snapshots every registered metric.
pub fn snapshot() -> Snapshot {
    let reg = registry().lock().expect("metrics registry poisoned");
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), (h.count(), h.sum(), h.nonzero_buckets())))
            .collect(),
    }
}

/// A timestamped counter/gauge snapshot for the trace exporter's
/// counter tracks.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Offset from the span-registry epoch (the trace time base).
    pub ts: Duration,
    /// Counter values by name at `ts`.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name at `ts`.
    pub gauges: BTreeMap<String, f64>,
}

/// Ceiling on retained counter samples; once reached, further
/// [`record_sample`] calls are dropped (and counted) rather than growing
/// the trace without bound.
pub const MAX_SAMPLES: usize = 4096;

fn samples_buffer() -> &'static Mutex<Vec<Sample>> {
    static SAMPLES: OnceLock<Mutex<Vec<Sample>>> = OnceLock::new();
    SAMPLES.get_or_init(|| Mutex::new(Vec::new()))
}

/// Appends a timestamped snapshot of all counters and gauges to the
/// sample buffer. Call at natural progress points (per epoch, per
/// incremental step); capped at [`MAX_SAMPLES`].
pub fn record_sample() {
    let ts = crate::span::epoch().elapsed();
    let mut buf = samples_buffer().lock().expect("sample buffer poisoned");
    if buf.len() >= MAX_SAMPLES {
        counter("obs.samples_dropped").inc();
        return;
    }
    let snap = snapshot();
    buf.push(Sample {
        ts,
        counters: snap.counters,
        gauges: snap.gauges,
    });
}

/// All counter samples recorded so far, in record order.
pub fn samples() -> Vec<Sample> {
    samples_buffer()
        .lock()
        .expect("sample buffer poisoned")
        .clone()
}

/// Zeroes every registered metric (names stay registered) and clears the
/// sample buffer. Used between independent runs sharing one process,
/// e.g. consecutive experiments.
pub fn reset() {
    let reg = registry().lock().expect("metrics registry poisoned");
    for c in reg.counters.values() {
        c.reset();
    }
    for g in reg.gauges.values() {
        g.reset();
    }
    for h in reg.histograms.values() {
        h.reset();
    }
    drop(reg);
    samples_buffer()
        .lock()
        .expect("sample buffer poisoned")
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing_boundaries() {
        // Values below 32 get exact buckets; above, sub-bucketed log₂.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 33);
        assert_eq!(bucket_index(u64::MAX), hdr::BUCKETS - 1);
        for i in 0..hdr::BUCKETS {
            assert_eq!(
                bucket_index(bucket_floor(i)),
                i,
                "floor of bucket {i} maps back"
            );
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 3, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 107);
        assert_eq!(h.max(), 100);
        // 0, 1, 3 are exact buckets; 100 lands in [100, 102).
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (3, 2), (100, 1)]);
    }

    #[test]
    fn histogram_quantiles_track_exact_values() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let (p50, p90, p99, p999) = h.percentiles();
        for (est, exact) in [(p50, 500.0), (p90, 900.0), (p99, 990.0), (p999, 999.0)] {
            let err = (est as f64 - exact).abs() / exact;
            assert!(
                err <= hdr::MAX_RELATIVE_ERROR + 1.0 / exact,
                "estimate {est} vs exact {exact}: err {err}"
            );
        }
        assert!(p50 <= p90 && p90 <= p99 && p99 <= p999);
    }

    #[test]
    fn registry_returns_same_handle() {
        let a = counter("test.same_handle");
        let b = counter("test.same_handle");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = gauge("test.gauge_rt");
        g.set(0.0375);
        assert_eq!(g.get(), 0.0375);
        g.set(-1.5);
        assert_eq!(g.get(), -1.5);
    }

    #[test]
    fn concurrent_counter_updates_are_lossless() {
        let c = counter("test.concurrent");
        let start = c.get();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get() - start, 80_000);
    }

    #[test]
    fn concurrent_histogram_updates_are_lossless() {
        let h = histogram("test.concurrent_hist");
        let start = h.count();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..5_000 {
                        h.record(t * 7 + i % 13);
                    }
                });
            }
        });
        assert_eq!(h.count() - start, 20_000);
    }

    #[test]
    fn snapshot_contains_registered_names() {
        counter("test.snap_counter").add(3);
        gauge("test.snap_gauge").set(2.5);
        histogram("test.snap_hist").record(9);
        let snap = snapshot();
        assert!(snap.counters["test.snap_counter"] >= 3);
        assert_eq!(snap.gauges["test.snap_gauge"], 2.5);
        let (count, sum, _) = &snap.histograms["test.snap_hist"];
        assert!(*count >= 1 && *sum >= 9);
    }

    #[test]
    fn samples_capture_counter_values_with_timestamps() {
        counter("test.sampled").add(7);
        record_sample();
        let samples = samples();
        let last = samples.last().expect("at least one sample");
        assert!(last.counters["test.sampled"] >= 7);
        if samples.len() >= 2 {
            assert!(samples[0].ts <= samples[samples.len() - 1].ts);
        }
    }
}
