//! Table 4 — per-class precision/recall/F-score for the three service
//! definitions, at the paper's per-definition best (c, V).

use crate::experiments::baseline::render_report;
use crate::table::f;
use crate::Ctx;
use darkvec::config::ServiceDef;
use darkvec::supervised::Evaluation;
use darkvec_gen::GtClass;
use darkvec_ml::metrics::ClassReport;

/// Runs the three service definitions with the paper's settings:
/// single (c=75, V=50), auto (c=50, V=50), domain (c=25, V=50), k = 7.
pub fn table4(ctx: &Ctx) -> String {
    let mut out = String::from("Table 4: 7-NN classifier report per service definition\n");
    for (name, def, c) in [
        ("Single service (c=75, V=50)", ServiceDef::Single, 75),
        (
            "Auto-defined services (c=50, V=50)",
            ServiceDef::Auto(10),
            50,
        ),
        (
            "Domain knowledge based (c=25, V=50)",
            ServiceDef::DomainKnowledge,
            25,
        ),
    ] {
        let report = service_report(ctx, def, c, 7);
        out.push_str(&format!("\n--- {name} ---\n"));
        out.push_str(&render_report(&report));
        out.push_str(&format!(
            "accuracy over GT classes: {}\n",
            f(report.accuracy, 4)
        ));
    }
    out.push_str("\nExpected shape: single service fails on minority classes; domain/auto recover them;\nStretchoid recall stays low (irregular pattern); Engin-umich is perfect.\n");
    out
}

/// Trains and evaluates one service definition (shared with tests).
pub fn service_report(ctx: &Ctx, def: ServiceDef, window: usize, k: usize) -> ClassReport {
    let cfg = ctx.config_with(def, window, 50);
    let model = darkvec::pipeline::run(ctx.trace(), &cfg);
    let eval_labels = ctx.last_day_ml_labels();
    let ev = Evaluation::prepare(
        &model.embedding,
        &eval_labels,
        10,
        GtClass::Unknown.label(),
        k,
        0,
    );
    ev.report(k, &GtClass::names())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_report_runs_and_includes_engin() {
        let ctx = Ctx::for_tests(81);
        let report = service_report(&ctx, ServiceDef::DomainKnowledge, 10, 7);
        let engin = report.row("Engin-umich").expect("engin row");
        assert!(engin.support > 0);
        assert!(report.accuracy > 0.0);
    }
}
