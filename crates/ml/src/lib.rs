//! # darkvec-ml
//!
//! Classic machine learning on embedding matrices, as used by DarkVec's
//! semi-supervised evaluation (§6):
//!
//! * [`vectors`] — L2 normalisation and cosine similarity on row-major
//!   matrices;
//! * [`knn`] — parallel brute-force k-nearest-neighbour search under cosine
//!   similarity;
//! * [`classifier`] — the leave-one-out k-NN majority-vote classifier the
//!   paper uses to measure embedding quality;
//! * [`metrics`] — accuracy, per-class precision/recall/F-score and
//!   confusion matrices (Table 4 / Table 6 reports).
//!
//! The crate also implements the classic clustering algorithms the paper
//! compared against its graph-based approach (§7.1) — [`kmeans`],
//! [`dbscan`] and [`hac`] — so that "these algorithms produce poor
//! results" can be reproduced rather than taken on faith.
//!
//! Past ~10⁵ rows the exact scan's O(n²·d) wall dominates every
//! downstream analysis; [`ann`] provides a seeded-deterministic HNSW
//! index with a recall harness, selectable per consumer via
//! [`ann::NeighborBackend`] (exact stays the default).

pub mod ann;
pub mod classifier;
pub mod dbscan;
pub mod hac;
pub mod kmeans;
pub mod knn;
pub mod metrics;
pub mod quant;
pub mod vectors;

pub use ann::{
    recall_at_k, HnswConfig, HnswIndex, NeighborBackend, NeighborIndex, Precision,
    QuantizedExactIndex,
};
pub use classifier::{loo_knn_classify, LooOutcome};
pub use dbscan::{dbscan, DbscanConfig};
pub use hac::{hac_average, Dendrogram};
pub use kmeans::{kmeans, KMeansConfig};
pub use knn::{knn_all, knn_batch, knn_query, Neighbor};
pub use metrics::{ClassReport, ConfusionMatrix};
pub use quant::{QuantizedMatrix, QuantizedQuery};
pub use vectors::{cosine, normalize_rows, normalize_vec, Matrix};
