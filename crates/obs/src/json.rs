//! A minimal JSON value and writer.
//!
//! The workspace's `serde` is an inert offline stub, so manifests are
//! serialized by hand through this module. Only what manifests need:
//! construction, escaping, and deterministic pretty-printing (object
//! keys keep insertion order).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number; non-finite values serialize as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep insertion order for diff-friendly output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) a key in an object; panics on non-objects.
    pub fn set(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on non-object")
        };
        if let Some(entry) = entries.iter_mut().find(|(k, _)| k == key) {
            entry.1 = value.into();
        } else {
            entries.push((key.to_string(), value.into()));
        }
        self
    }

    /// Builder-style [`set`](Json::set).
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.set(key, value);
        self
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_strings() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.pretty().trim(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(42u64).pretty().trim(), "42");
        assert_eq!(Json::from(2.5).pretty().trim(), "2.5");
        assert_eq!(Json::Num(f64::NAN).pretty().trim(), "null");
    }

    #[test]
    fn objects_keep_insertion_order_and_nest() {
        let j = Json::obj()
            .with("z", 1u64)
            .with("a", Json::obj().with("inner", true))
            .with("list", vec![1u64, 2, 3]);
        let text = j.pretty();
        let z = text.find("\"z\"").unwrap();
        let a = text.find("\"a\"").unwrap();
        assert!(z < a, "insertion order preserved:\n{text}");
        assert!(text.contains("\"inner\": true"));
        assert_eq!(
            j.get("a").and_then(|a| a.get("inner")),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn set_replaces_existing_key() {
        let mut j = Json::obj().with("k", 1u64);
        j.set("k", 2u64);
        assert_eq!(j.get("k"), Some(&Json::Num(2.0)));
    }
}
