//! # darkvec-suite
//!
//! Umbrella crate for the DarkVec reproduction workspace. It re-exports
//! the member crates so the repository-level examples (`examples/`) and
//! integration tests (`tests/`) can use a single dependency, and so
//! downstream users can depend on one crate:
//!
//! * [`types`] — traffic substrate (packets, traces, IPs, services);
//! * [`gen`] — the deterministic darknet simulator;
//! * [`w2v`] — the from-scratch skip-gram/negative-sampling Word2Vec;
//! * [`ml`] — kNN classification and metrics;
//! * [`graph`] — kNN graphs, Louvain, silhouettes;
//! * [`core`] — the DarkVec pipeline and analyses;
//! * [`baselines`] — the port-feature baseline, DANTE and IP2VEC.

pub use darkvec as core;
pub use darkvec_baselines as baselines;
pub use darkvec_gen as gen;
pub use darkvec_graph as graph;
pub use darkvec_ml as ml;
pub use darkvec_types as types;
pub use darkvec_w2v as w2v;
