//! Offline stand-in for `crossbeam`, covering only [`scope`].
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this stub
//! is a thin adapter that keeps the crossbeam 0.8 call shape:
//! `crossbeam::scope(|s| { s.spawn(|_| …); }).expect("…")`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A scope handle passed to [`scope`] closures; spawned threads may
/// themselves spawn onto it.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so
    /// workers can spawn siblings, as in crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed data may be shared with spawned
/// threads; joins them all before returning. Returns `Err` with the panic
/// payload if the closure or any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn threads_share_borrowed_state_and_join() {
        let total = AtomicU64::new(0);
        let data: Vec<u64> = (0..100).collect();
        super::scope(|s| {
            for chunk in data.chunks(30) {
                s.spawn(|_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum, Ordering::Relaxed);
                });
            }
        })
        .unwrap();
        assert_eq!(total.into_inner(), (0..100).sum::<u64>());
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("worker died"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_works() {
        let count = AtomicU64::new(0);
        super::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .unwrap();
        assert_eq!(count.into_inner(), 1);
    }
}
