//! Precomputed sigmoid, the same optimisation as `word2vec.c`'s
//! `expTable`: the logistic function is evaluated by table lookup inside
//! the SGD inner loop, with saturation outside ±[`MAX_EXP`].

/// Saturation bound: `sigmoid(x)` is treated as 0/1 for `|x| > MAX_EXP`.
pub const MAX_EXP: f32 = 6.0;

/// Number of table buckets over `[-MAX_EXP, MAX_EXP]`.
pub const TABLE_SIZE: usize = 1024;

/// The precomputed table. Built once per process on first use.
pub struct SigmoidTable {
    table: [f32; TABLE_SIZE],
}

impl SigmoidTable {
    /// Builds the table; cheap enough to construct eagerly.
    pub fn new() -> Self {
        let mut table = [0.0f32; TABLE_SIZE];
        for (i, slot) in table.iter_mut().enumerate() {
            // Bucket centre mapped into [-MAX_EXP, MAX_EXP].
            let x = (i as f32 / TABLE_SIZE as f32 * 2.0 - 1.0) * MAX_EXP;
            *slot = 1.0 / (1.0 + (-x).exp());
        }
        SigmoidTable { table }
    }

    /// `sigmoid(x)` by table lookup with saturation.
    #[inline]
    pub fn get(&self, x: f32) -> f32 {
        if x >= MAX_EXP {
            1.0
        } else if x <= -MAX_EXP {
            0.0
        } else {
            let idx = ((x + MAX_EXP) / (2.0 * MAX_EXP) * TABLE_SIZE as f32) as usize;
            self.table[idx.min(TABLE_SIZE - 1)]
        }
    }
}

impl Default for SigmoidTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Exact sigmoid, for tests and non-hot-path callers.
pub fn sigmoid_exact(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_exact_within_table_resolution() {
        let t = SigmoidTable::new();
        let mut x = -5.9f32;
        while x < 5.9 {
            let err = (t.get(x) - sigmoid_exact(x)).abs();
            assert!(
                err < 5e-3,
                "x={x}: table={} exact={}",
                t.get(x),
                sigmoid_exact(x)
            );
            x += 0.037;
        }
    }

    #[test]
    fn saturates_outside_range() {
        let t = SigmoidTable::new();
        assert_eq!(t.get(100.0), 1.0);
        assert_eq!(t.get(6.0), 1.0);
        assert_eq!(t.get(-100.0), 0.0);
        assert_eq!(t.get(-6.0), 0.0);
    }

    #[test]
    fn clip_boundary_is_exact_and_monotone() {
        let t = SigmoidTable::new();
        // Exactly ±MAX_EXP saturates; the nearest representable values
        // inside still go through the table and stay strictly inside
        // (0, 1), so saturation is a clean step at the boundary.
        let below = f32::from_bits(MAX_EXP.to_bits() - 1);
        // For negatives a smaller bit pattern is closer to zero, so this
        // is the nearest representable value above -MAX_EXP.
        let above = f32::from_bits((-MAX_EXP).to_bits() - 1);
        assert_eq!(t.get(MAX_EXP), 1.0);
        assert_eq!(t.get(-MAX_EXP), 0.0);
        assert!(
            t.get(below) < 1.0 && t.get(below) > 0.99,
            "{}",
            t.get(below)
        );
        assert!(
            t.get(above) > 0.0 && t.get(above) < 0.01,
            "{}",
            t.get(above)
        );
        // The last table buckets agree with the exact sigmoid at the
        // boundary to within the table's resolution.
        assert!((t.get(below) - sigmoid_exact(MAX_EXP)).abs() < 5e-3);
        assert!((t.get(above) - sigmoid_exact(-MAX_EXP)).abs() < 5e-3);
        // Monotone across each boundary.
        assert!(t.get(below) <= t.get(MAX_EXP));
        assert!(t.get(-MAX_EXP) <= t.get(above));
    }

    #[test]
    fn midpoint_is_half() {
        let t = SigmoidTable::new();
        assert!((t.get(0.0) - 0.5).abs() < 1e-2);
    }

    #[test]
    fn monotone_nondecreasing() {
        let t = SigmoidTable::new();
        let mut prev = -1.0f32;
        let mut x = -7.0f32;
        while x < 7.0 {
            let v = t.get(x);
            assert!(v >= prev, "sigmoid table not monotone at {x}");
            prev = v;
            x += 0.01;
        }
    }
}
