//! Ground-truth extension (§6.4): use the embedding to propose labels for
//! Unknown senders.
//!
//! "Given the set of Unknown IP addresses classified as one GT class, we
//! sort them by increasing average distance to their k-NN [...]. We stop
//! when the average distance becomes higher than the maximum average
//! distance among senders of the given GT class."

use darkvec_ml::classifier::{loo_knn_classify, Label};
use darkvec_ml::knn::Neighbor;
use darkvec_types::Ipv4;
use darkvec_w2v::Embedding;

/// One proposed label extension.
#[derive(Clone, Debug, PartialEq)]
pub struct Extension {
    /// The previously-Unknown sender.
    pub ip: Ipv4,
    /// The GT class it is proposed to join.
    pub class: Label,
    /// Its average cosine *distance* (1 − similarity) to its k nearest
    /// neighbours — lower is more confident.
    pub avg_distance: f64,
}

/// Proposes extensions of the ground truth.
///
/// * `neighbors`/`labels` — per-row kNN lists and voting labels, aligned
///   with the embedding's vocab (as produced by
///   [`crate::supervised::Evaluation`]);
/// * `unknown` — the label id meaning "Unknown";
/// * `k` — neighbourhood size.
///
/// Returns extensions sorted by ascending average distance (most
/// confident first).
pub fn extend_ground_truth(
    embedding: &Embedding<Ipv4>,
    neighbors: &[Vec<Neighbor>],
    labels: &[Label],
    unknown: Label,
    k: usize,
) -> Vec<Extension> {
    assert_eq!(neighbors.len(), labels.len(), "rows must align");
    let avg_dist = |neigh: &[Neighbor]| -> f64 {
        let take = neigh.iter().take(k);
        let n = take.len().max(1);
        take.map(|nb| 1.0 - nb.similarity as f64).sum::<f64>() / n as f64
    };

    // Per-class acceptance threshold: the maximum average kNN distance
    // observed among that class's *labelled* members.
    let nclasses = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut threshold = vec![f64::NEG_INFINITY; nclasses];
    for (i, &l) in labels.iter().enumerate() {
        if l != unknown {
            let d = avg_dist(&neighbors[i]);
            if d > threshold[l as usize] {
                threshold[l as usize] = d;
            }
        }
    }

    let outcome = loo_knn_classify(neighbors, labels, k);
    let mut out = Vec::new();
    for (i, &pred) in outcome.predictions.iter().enumerate() {
        if labels[i] != unknown || pred == unknown {
            continue;
        }
        let d = avg_dist(&neighbors[i]);
        if d <= threshold[pred as usize] {
            out.push(Extension {
                ip: *embedding.vocab().word(i as u32),
                class: pred,
                avg_distance: d,
            });
        }
    }
    out.sort_by(|a, b| a.avg_distance.total_cmp(&b.avg_distance));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkvec_ml::knn::knn_all;
    use darkvec_ml::vectors::Matrix;
    use darkvec_w2v::Vocab;

    /// Class 0 at (1,0); one Unknown right inside it, one Unknown far away
    /// but still voting class 0 (nearest points are class 0).
    fn fixture() -> (Embedding<Ipv4>, Vec<Vec<Neighbor>>, Vec<Label>) {
        let ips: Vec<Ipv4> = (1..=6).map(|d| Ipv4::new(10, 0, 0, d)).collect();
        let corpus: Vec<Vec<Ipv4>> = ips.iter().map(|&ip| vec![ip, ip]).collect();
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter()), 1);
        // 4 class members tightly at angle 0; one unknown at ~2 degrees;
        // one unknown at 40 degrees (votes class 0 but is far).
        let angles = [0.00f32, 0.01, 0.02, 0.03, 0.035, 0.70];
        let mut vectors = vec![0.0f32; 6 * 2];
        let mut labels = vec![9u32; 6];
        for (i, &ip) in ips.iter().enumerate() {
            let id = vocab.id(&ip).unwrap() as usize;
            vectors[id * 2] = angles[i].cos();
            vectors[id * 2 + 1] = angles[i].sin();
            if i < 4 {
                labels[id] = 0;
            }
        }
        let emb = Embedding::from_parts(vocab, vectors, 2);
        let nn = knn_all(Matrix::new(emb.vectors(), 6, 2), 3, 1);
        (emb, nn, labels)
    }

    #[test]
    fn close_unknown_is_extended_far_one_is_not() {
        let (emb, nn, labels) = fixture();
        let ext = extend_ground_truth(&emb, &nn, &labels, 9, 3);
        assert_eq!(ext.len(), 1, "extensions: {ext:?}");
        assert_eq!(ext[0].class, 0);
        // The accepted one is the near sender (angle 0.035).
        let near_ip = *emb.vocab().word(
            (0..6u32)
                .find(|&id| {
                    labels[id as usize] == 9 && {
                        let v = emb.row(id);
                        v[1] < 0.1
                    }
                })
                .unwrap(),
        );
        assert_eq!(ext[0].ip, near_ip);
    }

    #[test]
    fn results_sorted_by_confidence() {
        let (emb, nn, mut labels) = fixture();
        // Make the far sender a class member so its distance lifts the
        // threshold, letting both unknowns in.
        let far_id = (0..6usize).find(|&id| emb.row(id as u32)[1] > 0.5).unwrap();
        labels[far_id] = 0;
        // The remaining unknown:
        let ext = extend_ground_truth(&emb, &nn, &labels, 9, 3);
        assert!(!ext.is_empty());
        for pair in ext.windows(2) {
            assert!(pair[0].avg_distance <= pair[1].avg_distance);
        }
    }

    #[test]
    fn no_unknowns_no_extensions() {
        let (emb, nn, mut labels) = fixture();
        for l in labels.iter_mut() {
            if *l == 9 {
                *l = 0;
            }
        }
        assert!(extend_ground_truth(&emb, &nn, &labels, 9, 3).is_empty());
    }
}
