//! # darkvec-obs
//!
//! The observability layer of the DarkVec workspace: **std-only, zero
//! external dependencies**, threaded through every pipeline stage.
//!
//! Three facilities, one per module:
//!
//! * [`log`] — a leveled logger (`error!`/`warn!`/`info!`/`debug!`)
//!   controlled by the `DARKVEC_LOG` environment variable or
//!   [`log::set_level`]; replaces ad-hoc `eprintln!` diagnostics.
//! * [`span`] — hierarchical timed spans: `let _g = span!("corpus");`
//!   records wall time into a per-process span tree on guard drop.
//!   Repeated spans with the same name under the same parent aggregate
//!   (count + total time), so per-window instrumentation stays readable.
//! * [`metrics`] — a global registry of monotonically increasing
//!   counters, float gauges, and HDR sub-bucketed histograms (see
//!   [`hdr`]) with bounded-error p50/p90/p99/p99.9 queries, all built
//!   on atomics and cheap enough to bump from Hogwild workers.
//!
//! [`manifest`] ties them together: a [`manifest::ManifestBuilder`]
//! snapshots the span tree and metrics registry into a JSON **run
//! manifest** under `results/manifests/`, giving every CLI command and
//! every `xp` experiment a machine-readable perf/quality record. [`json`]
//! is the tiny JSON writer/parser backing it (the workspace's serde is
//! an inert offline stub, so manifests are emitted by hand).
//!
//! On top of manifests sit the production-observability modules:
//!
//! * [`trace`] — exports a manifest's raw span events and counter
//!   samples as Chrome `trace_event` JSON (Perfetto-compatible, real
//!   per-thread lanes);
//! * [`serve`] — a std-only TCP endpoint (`--metrics-addr`) exposing
//!   the live registry as Prometheus text and JSON;
//! * [`diff`] — structured regression comparison between two manifests
//!   with a percent gate, used by `darkvec obs diff` in CI.
//!
//! ```
//! use darkvec_obs::{info, metrics, span};
//!
//! darkvec_obs::log::init_from_env();
//! let _run = span!("my_stage");
//! metrics::counter("my_stage.items").add(42);
//! info!("stage finished");
//! ```

pub mod diff;
pub mod hdr;
pub mod json;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod serve;
pub mod span;
pub mod trace;

pub use json::Json;
pub use log::Level;
pub use manifest::ManifestBuilder;
pub use span::SpanNode;
