//! `xp` — the experiment runner.
//!
//! ```text
//! xp <experiment-id>... [--scale S] [--days D] [--seed N] [--out DIR]
//! xp all
//! xp list
//! ```
//!
//! Regenerates the paper's tables and figures (DESIGN.md §3 maps ids to
//! artifacts). Output is printed and mirrored under `--out` (default
//! `results/`). Every experiment also writes a JSON run manifest (stage
//! timings + metrics) under `<out>/manifests/`; `-v` or `DARKVEC_LOG`
//! control diagnostic verbosity.

use darkvec_bench::{experiments, Ctx};
use darkvec_gen::SimConfig;
use darkvec_obs::{Json, Level, ManifestBuilder};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    darkvec_obs::log::init_from_env();
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let mut ids: Vec<String> = Vec::new();
    let mut sim_cfg = SimConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut smoke = false;
    let mut backend = darkvec_ml::ann::NeighborBackend::Exact;
    let mut _metrics_server = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metrics-addr" => match it.next() {
                Some(addr) => match darkvec_obs::serve::MetricsServer::start(&addr) {
                    Ok(server) => {
                        darkvec_obs::info!("metrics endpoint: http://{}/metrics", server.addr());
                        _metrics_server = Some(server);
                    }
                    Err(e) => return fail(&format!("--metrics-addr {addr}: {e}")),
                },
                None => return fail("--metrics-addr needs host:port"),
            },
            "--smoke" => {
                smoke = true;
                sim_cfg = SimConfig::tiny(sim_cfg.seed);
            }
            "--no-simd" => darkvec_kernels::set_simd_enabled(false),
            "--ann" => backend = darkvec_ml::ann::NeighborBackend::ann(),
            "--exact" => backend = darkvec_ml::ann::NeighborBackend::Exact,
            "--scale" => match take_f64(&mut it, "--scale") {
                Ok(v) => {
                    sim_cfg.sender_scale *= v;
                    sim_cfg.rate_scale *= v.sqrt();
                }
                Err(e) => return fail(&e),
            },
            "--days" => match take_f64(&mut it, "--days") {
                Ok(v) if v >= 1.0 => sim_cfg.days = v as u64,
                _ => return fail("--days needs a value >= 1"),
            },
            "--seed" => match take_f64(&mut it, "--seed") {
                Ok(v) => sim_cfg.seed = v as u64,
                Err(e) => return fail(&e),
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => return fail("--out needs a directory"),
            },
            "-v" => darkvec_obs::log::set_level(Some(Level::Debug)),
            "--log-level" => match it.next().as_deref().and_then(Level::parse) {
                Some(parsed) => darkvec_obs::log::set_level(parsed),
                None => return fail("--log-level must be error|warn|info|debug|off"),
            },
            "list" => {
                println!("available experiments:");
                for id in experiments::ALL {
                    println!("  {id}");
                }
                return ExitCode::SUCCESS;
            }
            "all" => ids.extend(experiments::ALL.iter().map(|s| s.to_string())),
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => return fail(&format!("unknown flag {other}")),
        }
    }

    if ids.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    darkvec_obs::manifest::set_env("threads", threads as u64);
    darkvec_obs::manifest::set_env("simd", darkvec_kernels::active_path().name());
    darkvec_obs::manifest::set_env(
        "backend",
        match backend {
            darkvec_ml::ann::NeighborBackend::Exact => "exact",
            _ => "ann",
        },
    );

    let manifest_dir = out_dir.join("manifests");
    let mut ctx = Ctx::new(sim_cfg.clone(), out_dir);
    ctx.smoke = smoke;
    ctx.backend = backend;
    for id in &ids {
        // Spans/metrics are process-global; reset between experiments so
        // each manifest describes exactly one experiment (the shared
        // sim/model caches mean later manifests may show fewer stages).
        darkvec_obs::span::reset();
        darkvec_obs::metrics::reset();
        darkvec_obs::manifest::clear_attached();
        let manifest = ManifestBuilder::new(&format!("xp-{id}"));
        let started = std::time::Instant::now();
        match experiments::run(&ctx, id) {
            Some(output) => {
                println!("\n================ {id} ================\n");
                println!("{output}");
                let path = ctx.write_artifact(&format!("{id}.txt"), &output);
                write_manifest(manifest, &manifest_dir, id, &sim_cfg, &path);
                darkvec_obs::info!(
                    "{id} done in {:.1?} -> {}",
                    started.elapsed(),
                    path.display()
                );
            }
            None => {
                eprintln!("unknown experiment '{id}' (try: xp list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Writes one experiment's run manifest; failures are warnings, not
/// errors — the experiment's artifact is already on disk.
fn write_manifest(
    mut manifest: ManifestBuilder,
    dir: &std::path::Path,
    id: &str,
    sim_cfg: &SimConfig,
    artifact: &std::path::Path,
) {
    manifest.section(
        "experiment",
        Json::obj()
            .with("id", id)
            .with("artifact", artifact.display().to_string()),
    );
    manifest.section(
        "sim_config",
        Json::obj()
            .with("days", sim_cfg.days)
            .with("sender_scale", sim_cfg.sender_scale)
            .with("rate_scale", sim_cfg.rate_scale)
            .with("backscatter", sim_cfg.backscatter)
            .with("seed", sim_cfg.seed),
    );
    match manifest.write(dir) {
        Ok(path) => darkvec_obs::info!("manifest: {}", path.display()),
        Err(e) => darkvec_obs::warn!("could not write manifest to {}: {e}", dir.display()),
    }
}

fn take_f64(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<f64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn usage() {
    eprintln!(
        "usage: xp <experiment>... [--scale S] [--days D] [--seed N] [--out DIR]\n\
         \n\
         experiments: {} | all | list\n\
         \n\
         --scale S   multiply simulation size by S (default 1.0 = 1/10 paper scale)\n\
         --days D    capture length in days (default 30)\n\
         --seed N    simulation seed (default 1)\n\
         --out DIR   artifact directory (default results/)\n\
         --smoke     tiny simulation + reduced workloads (CI); outputs stay in --out\n\
         --no-simd   force scalar-equivalent portable kernels (also DARKVEC_NO_SIMD=1)\n\
         --ann       approximate HNSW neighbour search in kNN experiments\n\
         --exact     exact brute-force neighbour search (the default)\n\
         --metrics-addr A  serve live Prometheus metrics on A while running\n\
         -v          debug logging (also --log-level LEVEL or DARKVEC_LOG)\n\
         \n\
         each experiment writes a JSON run manifest under <out>/manifests/",
        experiments::ALL.join(" | ")
    );
}
