//! Ground-truth class artifacts: Table 2 and Figure 3.

use crate::table::{count, pct, TextTable};
use crate::Ctx;
use darkvec::services::ServiceMap;
use darkvec_gen::GtClass;
use darkvec_types::stats::Counter;
use darkvec_types::{Ipv4, PortKey};
use std::collections::HashMap;

/// Table 2 — ground-truth classes present on the last day: senders,
/// packets, distinct ports, top-5 ports with traffic share.
pub fn table2(ctx: &Ctx) -> String {
    let last = ctx.trace().last_day();
    let labels = ctx.last_day_labels();

    let mut per_class: HashMap<GtClass, Counter<PortKey>> = HashMap::new();
    let mut senders: HashMap<GtClass, std::collections::HashSet<Ipv4>> = HashMap::new();
    for p in last.packets() {
        if let Some(&class) = labels.get(&p.src) {
            per_class
                .entry(class)
                .or_insert_with(Counter::new)
                .add(p.port_key());
            senders.entry(class).or_default().insert(p.src);
        }
    }

    let mut out = String::from("Table 2: ground-truth classes, last day (active senders)\n\n");
    let mut t = TextTable::new(vec![
        "class",
        "senders",
        "packets",
        "ports",
        "top-5 ports (% traffic)",
    ]);
    let mut totals = (0u64, 0u64);
    for class in GtClass::ALL {
        let Some(ports) = per_class.get(&class) else {
            continue;
        };
        let n_senders = senders[&class].len();
        let top = ports
            .top(5)
            .into_iter()
            .map(|(k, c)| format!("{k} ({:.1}%)", 100.0 * c as f64 / ports.total() as f64))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(vec![
            class.name().to_string(),
            count(n_senders as u64),
            count(ports.total()),
            count(ports.distinct() as u64),
            top,
        ]);
        totals.0 += n_senders as u64;
        totals.1 += ports.total();
    }
    t.row(vec![
        "Total".to_string(),
        count(totals.0),
        count(totals.1),
        count(last.port_counter().distinct() as u64),
        String::new(),
    ]);
    out.push_str(&t.render());
    out
}

/// Figure 3 — fraction of daily packets sent to generic services,
/// normalised per class (columns in the paper's heatmap).
pub fn fig3(ctx: &Ctx) -> String {
    let last = ctx.trace().last_day();
    let labels = ctx.last_day_labels();
    let services = ServiceMap::domain_knowledge();

    // counts[class][service]
    let mut counts: HashMap<GtClass, Vec<u64>> = HashMap::new();
    for p in last.packets() {
        if let Some(&class) = labels.get(&p.src) {
            let row = counts
                .entry(class)
                .or_insert_with(|| vec![0; services.len()]);
            row[services.service_of(p.port_key())] += 1;
        }
    }

    let mut out = String::from(
        "Figure 3: fraction of daily packets per (service x class), normalised per class\n\n",
    );
    let mut header = vec!["service".to_string()];
    let classes: Vec<GtClass> = GtClass::ALL
        .iter()
        .copied()
        .filter(|c| counts.contains_key(c))
        .collect();
    header.extend(classes.iter().map(|c| c.name().to_string()));
    let mut t = TextTable::new(header);
    for (sid, sname) in services.names().iter().enumerate() {
        let mut row = vec![sname.clone()];
        for class in &classes {
            let col = &counts[class];
            let total: u64 = col.iter().sum();
            let frac = if total == 0 {
                0.0
            } else {
                col[sid] as f64 / total as f64
            };
            row.push(if frac == 0.0 {
                "-".to_string()
            } else {
                pct(frac)
            });
        }
        t.row(row);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading: Engin-umich concentrates on DNS; most other classes scatter across services\n(the paper's argument for needing more than port-based features).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_gt_classes() {
        let ctx = Ctx::for_tests(51);
        let out = table2(&ctx);
        for class in [
            GtClass::MiraiLike,
            GtClass::Censys,
            GtClass::EnginUmich,
            GtClass::Unknown,
        ] {
            assert!(out.contains(class.name()), "missing {class} in:\n{out}");
        }
        assert!(out.contains("Total"));
    }

    #[test]
    fn fig3_engin_is_pure_dns() {
        let ctx = Ctx::for_tests(52);
        let out = fig3(&ctx);
        // Find the DNS row and the Engin-umich column: must be 100%.
        let header_line = out.lines().find(|l| l.starts_with("service")).unwrap();
        let engin_col = header_line.find("Engin-umich").expect("engin column");
        let dns_line = out.lines().find(|l| l.starts_with("DNS")).unwrap();
        let cell: String = dns_line
            .chars()
            .skip(engin_col)
            .take(9)
            .collect::<String>()
            .trim()
            .to_string();
        assert_eq!(cell, "100.0%", "fig3 output:\n{out}");
    }
}
