//! HDR-style sub-bucketed histogram math.
//!
//! Plain log₂ buckets answer "which order of magnitude" but are useless
//! for percentile queries: a p99 read out of a bucket spanning
//! `[2^20, 2^21)` can be off by almost 2×. The fix (the same one
//! HdrHistogram uses) is to split every power-of-two octave into
//! `2^SUB_BITS` equal sub-buckets.
//!
//! With `SUB_BITS = 5` (32 sub-buckets per octave):
//!
//! * values `0..32` are recorded **exactly** (one bucket per value);
//! * a value `v ≥ 32` lands in a bucket of width `2^(⌊log₂ v⌋ - 5)`,
//!   i.e. at most `v / 32`;
//! * quantile queries report the **midpoint** of the selected bucket, so
//!   the error vs. the exact sample at that rank is at most half a
//!   bucket width: **relative error ≤ 1/64 ≈ 1.6%** for values ≥ 32
//!   (plus one unit of integer quantization), exact below 32.
//!
//! The full `u64` range fits in `32 + 59·32 = 1920` buckets — small
//! enough for a flat atomic array per histogram, no allocation on the
//! record path, and cheap to snapshot.

/// log₂ of the number of sub-buckets per octave.
pub const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (32).
pub const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`.
///
/// Indices `0..32` are the exact values `0..32`; octaves for exponents
/// `5..=63` contribute 32 buckets each.
pub const BUCKETS: usize = (SUB + (63 - SUB_BITS as u64) * SUB + SUB) as usize;

/// Upper bound on the relative error of a quantile estimate for values
/// `≥ SUB` (midpoint reporting): `1 / (2 * SUB)`.
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / (2 * SUB) as f64;

/// The bucket index `value` falls into.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros() as u64; // ⌊log₂ value⌋, ≥ SUB_BITS
        let sub = (value >> (exp - SUB_BITS as u64)) - SUB; // 0..SUB
        (SUB + (exp - SUB_BITS as u64) * SUB + sub) as usize
    }
}

/// The inclusive lower bound of bucket `index`.
pub fn bucket_floor(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB {
        index
    } else {
        let octave = (index - SUB) / SUB; // exp - SUB_BITS
        let sub = (index - SUB) % SUB;
        (SUB + sub) << octave
    }
}

/// The exclusive upper bound of bucket `index` (`u64::MAX` for the last
/// bucket, whose top value is unreachable anyway).
pub fn bucket_ceil(index: usize) -> u64 {
    if index + 1 < BUCKETS {
        bucket_floor(index + 1)
    } else {
        u64::MAX
    }
}

/// The value reported for a sample known to lie in bucket `index`: the
/// bucket midpoint, which halves the worst-case error vs. the floor.
pub fn bucket_midpoint(index: usize) -> u64 {
    let lo = bucket_floor(index);
    let hi = bucket_ceil(index);
    lo + (hi - lo - 1) / 2
}

/// Quantile estimate from `(bucket_floor, count)` pairs (ascending by
/// floor, as produced by histogram snapshots and manifests).
///
/// `q` is clamped to `[0, 1]`; the estimate is the midpoint of the
/// bucket containing the sample of rank `⌈q·total⌉` (1-based), matching
/// the "nearest-rank" definition an exact sorted-sample oracle uses.
/// Returns 0 for an empty histogram.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], total: u64, q: f64) -> u64 {
    if total == 0 {
        return 0;
    }
    let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for &(floor, count) in buckets {
        cumulative += count;
        if cumulative >= rank {
            return bucket_midpoint(bucket_index(floor));
        }
    }
    // Unreachable if counts sum to `total`; be defensive for manifests
    // with inconsistent totals.
    buckets.last().map_or(0, |&(floor, _)| floor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUB {
            let i = bucket_index(v);
            assert_eq!(bucket_floor(i), v);
            assert_eq!(bucket_ceil(i), v + 1);
            assert_eq!(bucket_midpoint(i), v);
        }
    }

    #[test]
    fn floors_round_trip_through_index() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
        }
    }

    #[test]
    fn buckets_tile_the_u64_range() {
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                bucket_ceil(i),
                bucket_floor(i + 1),
                "bucket {i} must abut bucket {}",
                i + 1
            );
        }
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_width_bounds_relative_error() {
        for v in [32u64, 100, 1_000, 123_456, u32::MAX as u64, 1 << 50] {
            let i = bucket_index(v);
            let width = bucket_ceil(i) - bucket_floor(i);
            assert!(
                width <= bucket_floor(i) / SUB,
                "width {width} of bucket holding {v} exceeds floor/{SUB}"
            );
            let mid = bucket_midpoint(i) as f64;
            let err = (mid - v as f64).abs() / v as f64;
            assert!(
                err <= MAX_RELATIVE_ERROR + 1.0 / v as f64,
                "midpoint error {err} for {v}"
            );
        }
    }

    #[test]
    fn quantiles_on_known_distribution() {
        // 100 samples: 1..=100, each exact (all < 32? no — use counts).
        let mut counts = std::collections::BTreeMap::new();
        for v in 1..=100u64 {
            *counts.entry(bucket_floor(bucket_index(v))).or_insert(0u64) += 1;
        }
        let buckets: Vec<(u64, u64)> = counts.into_iter().collect();
        let p50 = quantile_from_buckets(&buckets, 100, 0.50);
        let p99 = quantile_from_buckets(&buckets, 100, 0.99);
        assert!((p50 as f64 - 50.0).abs() <= 50.0 * MAX_RELATIVE_ERROR + 1.0);
        assert!((p99 as f64 - 99.0).abs() <= 99.0 * MAX_RELATIVE_ERROR + 1.0);
        assert_eq!(quantile_from_buckets(&buckets, 100, 0.0), 1);
        assert_eq!(quantile_from_buckets(&[], 0, 0.5), 0);
    }
}
