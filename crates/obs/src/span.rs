//! Hierarchical timed spans.
//!
//! `let _g = span!("corpus");` opens a span that closes (and records its
//! wall time) when the guard drops. Nesting is tracked per thread: a span
//! opened while another is active on the same thread becomes its child.
//! Completed spans land in a process-wide registry; [`snapshot`] folds
//! them into a tree where same-named siblings aggregate into one node
//! with a call count and total duration.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed span occurrence.
#[derive(Clone, Debug)]
struct SpanRecord {
    id: usize,
    parent: Option<usize>,
    name: &'static str,
    /// Offset from the registry epoch at which the span opened.
    start: Duration,
    duration: Duration,
}

struct Registry {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    next_id: AtomicUsize,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        records: Mutex::new(Vec::new()),
        next_id: AtomicUsize::new(0),
    })
}

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static ACTIVE: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for an open span; records the span on drop.
#[must_use = "a span guard that is dropped immediately records a zero-length span"]
pub struct SpanGuard {
    id: usize,
    parent: Option<usize>,
    name: &'static str,
    opened: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Robust to out-of-order drops: remove our id wherever it is.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let reg = registry();
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start: self.opened.duration_since(reg.epoch),
            duration: self.opened.elapsed(),
        };
        reg.records
            .lock()
            .expect("span registry poisoned")
            .push(record);
    }
}

/// Opens a span; prefer the [`span!`](crate::span!) macro.
pub fn enter(name: &'static str) -> SpanGuard {
    let reg = registry();
    let id = reg.next_id.fetch_add(1, Ordering::Relaxed);
    let parent = ACTIVE.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied();
        stack.push(id);
        parent
    });
    SpanGuard {
        id,
        parent,
        name,
        opened: Instant::now(),
    }
}

/// Opens a [`SpanGuard`] recording wall time until the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

/// An aggregated node of the span tree: all occurrences of one span name
/// under one parent path.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name as given to [`enter`].
    pub name: String,
    /// Number of occurrences aggregated into this node.
    pub count: u64,
    /// Total wall time across occurrences.
    pub total: Duration,
    /// Aggregated children, ordered by first occurrence.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Folds all completed spans into aggregated root nodes (spans whose
/// parent was still open at snapshot time surface as roots too).
pub fn snapshot() -> Vec<SpanNode> {
    let records = registry()
        .records
        .lock()
        .expect("span registry poisoned")
        .clone();
    build_tree(&records)
}

/// Drops all recorded spans (used between independent runs in one
/// process, e.g. consecutive `xp` experiments).
pub fn reset() {
    registry()
        .records
        .lock()
        .expect("span registry poisoned")
        .clear();
}

fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    use std::collections::{BTreeMap, HashMap, HashSet};

    let known: HashSet<usize> = records.iter().map(|r| r.id).collect();
    // Child occurrences grouped under their parent occurrence (or root).
    let mut by_parent: HashMap<Option<usize>, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        let parent = r.parent.filter(|p| known.contains(p));
        by_parent.entry(parent).or_default().push(r);
    }

    fn fold(
        parent: Option<usize>,
        by_parent: &HashMap<Option<usize>, Vec<&SpanRecord>>,
    ) -> Vec<SpanNode> {
        let Some(occurrences) = by_parent.get(&parent) else {
            return Vec::new();
        };
        // Aggregate same-named occurrences, keeping first-seen order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut grouped: BTreeMap<&'static str, (u64, Duration, Vec<SpanNode>)> = BTreeMap::new();
        let mut sorted: Vec<&&SpanRecord> = occurrences.iter().collect();
        sorted.sort_by_key(|r| r.start);
        for r in sorted {
            let entry = grouped.entry(r.name).or_insert_with(|| {
                order.push(r.name);
                (0, Duration::ZERO, Vec::new())
            });
            entry.0 += 1;
            entry.1 += r.duration;
            // Merge this occurrence's children into the aggregate node.
            for child in fold(Some(r.id), by_parent) {
                if let Some(existing) = entry.2.iter_mut().find(|c| c.name == child.name) {
                    existing.count += child.count;
                    existing.total += child.total;
                    merge_children(&mut existing.children, child.children);
                } else {
                    entry.2.push(child);
                }
            }
        }
        order
            .into_iter()
            .map(|name| {
                let (count, total, children) = grouped.remove(name).expect("grouped by name");
                SpanNode {
                    name: name.to_string(),
                    count,
                    total,
                    children,
                }
            })
            .collect()
    }

    fn merge_children(into: &mut Vec<SpanNode>, from: Vec<SpanNode>) {
        for child in from {
            if let Some(existing) = into.iter_mut().find(|c| c.name == child.name) {
                existing.count += child.count;
                existing.total += child.total;
                merge_children(&mut existing.children, child.children);
            } else {
                into.push(child);
            }
        }
    }

    fold(None, &by_parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs in a dedicated thread so this test's parent stack cannot see
    /// spans from concurrently running tests.
    fn in_fresh_thread<T: Send>(f: impl FnOnce() -> T + Send) -> T {
        std::thread::scope(|s| s.spawn(f).join().expect("test thread panicked"))
    }

    #[test]
    fn nesting_and_aggregation() {
        in_fresh_thread(|| {
            {
                let _outer = enter("test_outer");
                for _ in 0..3 {
                    let _inner = enter("test_inner");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let _other = enter("test_other");
            }
            let roots = snapshot();
            let outer = roots
                .iter()
                .find_map(|r| r.find("test_outer"))
                .expect("outer span");
            assert_eq!(outer.count, 1);
            let inner = outer.child("test_inner").expect("inner nested under outer");
            assert_eq!(inner.count, 3, "three occurrences aggregate into one node");
            assert!(outer.child("test_other").is_some());
            // Children appear in first-occurrence order.
            assert_eq!(outer.children[0].name, "test_inner");
        });
    }

    #[test]
    fn timing_is_monotone() {
        in_fresh_thread(|| {
            {
                let _outer = enter("test_mono_outer");
                let _inner = enter("test_mono_inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let roots = snapshot();
            let outer = roots
                .iter()
                .find_map(|r| r.find("test_mono_outer"))
                .expect("outer");
            let inner = outer.child("test_mono_inner").expect("inner");
            assert!(inner.total >= std::time::Duration::from_millis(2));
            assert!(
                outer.total >= inner.total,
                "parent {:?} must cover child {:?}",
                outer.total,
                inner.total
            );
        });
    }

    #[test]
    fn spans_on_other_threads_become_roots() {
        let handle = std::thread::spawn(|| {
            let _g = enter("test_thread_root");
        });
        handle.join().unwrap();
        let roots = snapshot();
        assert!(roots.iter().any(|r| r.name == "test_thread_root"));
    }
}
