//! Hierarchical timed spans.
//!
//! `let _g = span!("corpus");` opens a span that closes (and records its
//! wall time) when the guard drops. Nesting is tracked per thread: a span
//! opened while another is active on the same thread becomes its child.
//! Completed spans land in a process-wide registry; [`snapshot`] folds
//! them into a tree where same-named siblings aggregate into one node
//! with a call count and total duration.
//!
//! Two extra facilities back the trace exporter ([`crate::trace`]):
//!
//! * every record carries a small process-local **thread id** (and the
//!   thread's name, captured once), so [`events`] can reconstruct
//!   per-thread lanes of a Chrome trace;
//! * a [`SpanContext`] captured with [`context`] on one thread can be
//!   handed to [`enter_with`] on another, attaching worker spans to the
//!   spawning span instead of leaving them as orphan roots — the pattern
//!   for crossbeam/scoped-thread fan-outs (Hogwild training, parallel
//!   HNSW build, kNN chunks).

// lint: relaxed-ok(span id/drop counters are metrics counters; trace assembly orders events by captured timestamps, not atomic ordering)

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed span occurrence.
#[derive(Clone, Debug)]
struct SpanRecord {
    id: usize,
    parent: Option<usize>,
    name: &'static str,
    /// Offset from the registry epoch at which the span opened.
    start: Duration,
    duration: Duration,
    /// Process-local id of the thread the span ran on.
    tid: u64,
}

struct Registry {
    epoch: Instant,
    records: Mutex<Vec<SpanRecord>>,
    thread_names: Mutex<BTreeMap<u64, String>>,
    next_id: AtomicUsize,
    next_tid: AtomicU64,
}

fn registry() -> &'static Registry {
    static REGISTRY: std::sync::OnceLock<Registry> = std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        records: Mutex::new(Vec::new()),
        thread_names: Mutex::new(BTreeMap::new()),
        next_id: AtomicUsize::new(0),
        next_tid: AtomicU64::new(0),
    })
}

/// The instant all span (and counter-sample) timestamps are relative to.
pub(crate) fn epoch() -> Instant {
    registry().epoch
}

thread_local! {
    /// Ids of the spans currently open on this thread, outermost first.
    static ACTIVE: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    /// This thread's process-local id, assigned on first span.
    static TID: RefCell<Option<u64>> = const { RefCell::new(None) };
}

/// This thread's process-local id (stable for the thread's lifetime,
/// dense from 0 in first-span order). Registers the thread's name on
/// first use.
pub fn thread_id() -> u64 {
    TID.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(tid) = *slot {
            return tid;
        }
        let reg = registry();
        let tid = reg.next_tid.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        reg.thread_names
            .lock()
            .expect("thread name registry poisoned")
            .insert(tid, name);
        *slot = Some(tid);
        tid
    })
}

/// Names of every thread that has recorded a span, by thread id.
pub fn thread_names() -> BTreeMap<u64, String> {
    registry()
        .thread_names
        .lock()
        .expect("thread name registry poisoned")
        .clone()
}

/// A capturable handle to the innermost span active on the capturing
/// thread. Hand it across a thread boundary and open worker spans with
/// [`enter_with`] to keep them attached to the spawning span.
#[derive(Clone, Copy, Debug)]
pub struct SpanContext {
    parent: Option<usize>,
}

/// Captures the innermost active span of the current thread (if any).
pub fn context() -> SpanContext {
    SpanContext {
        parent: ACTIVE.with(|stack| stack.borrow().last().copied()),
    }
}

/// RAII guard for an open span; records the span on drop.
#[must_use = "a span guard that is dropped immediately records a zero-length span"]
pub struct SpanGuard {
    id: usize,
    parent: Option<usize>,
    name: &'static str,
    opened: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Robust to out-of-order drops: remove our id wherever it is.
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let reg = registry();
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            name: self.name,
            start: self.opened.duration_since(reg.epoch),
            duration: self.opened.elapsed(),
            tid: thread_id(),
        };
        reg.records
            .lock()
            .expect("span registry poisoned")
            .push(record);
    }
}

/// Opens a span; prefer the [`span!`](crate::span!) macro.
pub fn enter(name: &'static str) -> SpanGuard {
    enter_impl(name, None)
}

/// Opens a span whose parent is the span captured in `ctx` — typically on
/// a different thread — instead of this thread's innermost active span.
/// The new span still joins this thread's local stack, so spans opened
/// inside it nest normally.
pub fn enter_with(name: &'static str, ctx: SpanContext) -> SpanGuard {
    enter_impl(name, ctx.parent)
}

fn enter_impl(name: &'static str, explicit_parent: Option<usize>) -> SpanGuard {
    let reg = registry();
    let id = reg.next_id.fetch_add(1, Ordering::Relaxed);
    let parent = ACTIVE.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = explicit_parent.or_else(|| stack.last().copied());
        stack.push(id);
        parent
    });
    SpanGuard {
        id,
        parent,
        name,
        opened: Instant::now(),
    }
}

/// Opens a [`SpanGuard`] recording wall time until the guard drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, $ctx:expr) => {
        $crate::span::enter_with($name, $ctx)
    };
}

/// An aggregated node of the span tree: all occurrences of one span name
/// under one parent path.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name as given to [`enter`].
    pub name: String,
    /// Number of occurrences aggregated into this node.
    pub count: u64,
    /// Total wall time across occurrences.
    pub total: Duration,
    /// Aggregated children, ordered by first occurrence.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// One raw span occurrence, as exported to trace manifests: no
/// aggregation, real thread id, timeline offsets from the process epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Span name as given to [`enter`].
    pub name: &'static str,
    /// Offset from the process epoch at which the span opened.
    pub start: Duration,
    /// Wall time the span covered.
    pub duration: Duration,
    /// Process-local id of the thread the span ran on.
    pub tid: u64,
}

/// Every completed span occurrence in timeline order (by start offset).
pub fn events() -> Vec<SpanEvent> {
    let mut events: Vec<SpanEvent> = registry()
        .records
        .lock()
        .expect("span registry poisoned")
        .iter()
        .map(|r| SpanEvent {
            name: r.name,
            start: r.start,
            duration: r.duration,
            tid: r.tid,
        })
        .collect();
    events.sort_by_key(|e| e.start);
    events
}

/// Folds all completed spans into aggregated root nodes (spans whose
/// parent was still open at snapshot time surface as roots too).
pub fn snapshot() -> Vec<SpanNode> {
    let records = registry()
        .records
        .lock()
        .expect("span registry poisoned")
        .clone();
    build_tree(&records)
}

/// Drops all recorded spans (used between independent runs in one
/// process, e.g. consecutive `xp` experiments). Thread ids and names
/// survive — they identify threads, not runs.
pub fn reset() {
    registry()
        .records
        .lock()
        .expect("span registry poisoned")
        .clear();
}

fn build_tree(records: &[SpanRecord]) -> Vec<SpanNode> {
    use std::collections::{HashMap, HashSet};

    let known: HashSet<usize> = records.iter().map(|r| r.id).collect();
    // Child occurrences grouped under their parent occurrence (or root).
    let mut by_parent: HashMap<Option<usize>, Vec<&SpanRecord>> = HashMap::new();
    for r in records {
        let parent = r.parent.filter(|p| known.contains(p));
        by_parent.entry(parent).or_default().push(r);
    }

    fn fold(
        parent: Option<usize>,
        by_parent: &HashMap<Option<usize>, Vec<&SpanRecord>>,
    ) -> Vec<SpanNode> {
        let Some(occurrences) = by_parent.get(&parent) else {
            return Vec::new();
        };
        // Aggregate same-named occurrences, keeping first-seen order.
        let mut order: Vec<&'static str> = Vec::new();
        let mut grouped: BTreeMap<&'static str, (u64, Duration, Vec<SpanNode>)> = BTreeMap::new();
        let mut sorted: Vec<&&SpanRecord> = occurrences.iter().collect();
        sorted.sort_by_key(|r| r.start);
        for r in sorted {
            let entry = grouped.entry(r.name).or_insert_with(|| {
                order.push(r.name);
                (0, Duration::ZERO, Vec::new())
            });
            entry.0 += 1;
            entry.1 += r.duration;
            // Merge this occurrence's children into the aggregate node.
            for child in fold(Some(r.id), by_parent) {
                if let Some(existing) = entry.2.iter_mut().find(|c| c.name == child.name) {
                    existing.count += child.count;
                    existing.total += child.total;
                    merge_children(&mut existing.children, child.children);
                } else {
                    entry.2.push(child);
                }
            }
        }
        order
            .into_iter()
            .map(|name| {
                let (count, total, children) = grouped.remove(name).expect("grouped by name");
                SpanNode {
                    name: name.to_string(),
                    count,
                    total,
                    children,
                }
            })
            .collect()
    }

    fn merge_children(into: &mut Vec<SpanNode>, from: Vec<SpanNode>) {
        for child in from {
            if let Some(existing) = into.iter_mut().find(|c| c.name == child.name) {
                existing.count += child.count;
                existing.total += child.total;
                merge_children(&mut existing.children, child.children);
            } else {
                into.push(child);
            }
        }
    }

    fold(None, &by_parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs in a dedicated thread so this test's parent stack cannot see
    /// spans from concurrently running tests.
    fn in_fresh_thread<T: Send>(f: impl FnOnce() -> T + Send) -> T {
        std::thread::scope(|s| s.spawn(f).join().expect("test thread panicked"))
    }

    #[test]
    fn nesting_and_aggregation() {
        in_fresh_thread(|| {
            {
                let _outer = enter("test_outer");
                for _ in 0..3 {
                    let _inner = enter("test_inner");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                let _other = enter("test_other");
            }
            let roots = snapshot();
            let outer = roots
                .iter()
                .find_map(|r| r.find("test_outer"))
                .expect("outer span");
            assert_eq!(outer.count, 1);
            let inner = outer.child("test_inner").expect("inner nested under outer");
            assert_eq!(inner.count, 3, "three occurrences aggregate into one node");
            assert!(outer.child("test_other").is_some());
            // Children appear in first-occurrence order.
            assert_eq!(outer.children[0].name, "test_inner");
        });
    }

    #[test]
    fn timing_is_monotone() {
        in_fresh_thread(|| {
            {
                let _outer = enter("test_mono_outer");
                let _inner = enter("test_mono_inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let roots = snapshot();
            let outer = roots
                .iter()
                .find_map(|r| r.find("test_mono_outer"))
                .expect("outer");
            let inner = outer.child("test_mono_inner").expect("inner");
            assert!(inner.total >= std::time::Duration::from_millis(2));
            assert!(
                outer.total >= inner.total,
                "parent {:?} must cover child {:?}",
                outer.total,
                inner.total
            );
        });
    }

    #[test]
    fn spans_on_other_threads_become_roots() {
        let handle = std::thread::spawn(|| {
            let _g = enter("test_thread_root");
        });
        handle.join().unwrap();
        let roots = snapshot();
        assert!(roots.iter().any(|r| r.name == "test_thread_root"));
    }

    #[test]
    fn context_attaches_worker_spans_to_spawning_span() {
        in_fresh_thread(|| {
            {
                let _outer = enter("test_ctx_outer");
                let ctx = context();
                std::thread::scope(|s| {
                    for _ in 0..2 {
                        s.spawn(move || {
                            let _w = enter_with("test_ctx_worker", ctx);
                            // A span opened inside the worker span nests
                            // under it through the local stack.
                            let _inner = enter("test_ctx_worker_inner");
                        });
                    }
                });
            }
            let roots = snapshot();
            let outer = roots
                .iter()
                .find_map(|r| r.find("test_ctx_outer"))
                .expect("outer span");
            let worker = outer
                .child("test_ctx_worker")
                .expect("worker spans attach to the captured parent");
            assert_eq!(worker.count, 2, "both workers aggregate");
            assert_eq!(
                worker.child("test_ctx_worker_inner").map(|n| n.count),
                Some(2),
                "nested spans chain under the worker span"
            );
            assert!(
                !roots.iter().any(|r| r.name == "test_ctx_worker"),
                "no orphan worker roots"
            );
        });
    }

    #[test]
    fn events_carry_distinct_thread_ids() {
        let main_tid = thread_id();
        {
            let _g = enter("test_tid_main");
        }
        std::thread::spawn(|| {
            let _g = enter("test_tid_worker");
        })
        .join()
        .unwrap();
        let events = events();
        let main_ev = events
            .iter()
            .find(|e| e.name == "test_tid_main")
            .expect("main event");
        let worker_ev = events
            .iter()
            .find(|e| e.name == "test_tid_worker")
            .expect("worker event");
        assert_eq!(main_ev.tid, main_tid);
        assert_ne!(main_ev.tid, worker_ev.tid);
        let names = thread_names();
        assert!(names.contains_key(&main_ev.tid));
        assert!(names.contains_key(&worker_ev.tid));
    }

    #[test]
    fn events_are_timeline_ordered() {
        {
            let _a = enter("test_order_a");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _b = enter("test_order_b");
        }
        let events = events();
        for pair in events.windows(2) {
            assert!(pair[0].start <= pair[1].start, "events sorted by start");
        }
    }
}
