//! A token-level Rust lexer — just enough syntax to lint with.
//!
//! The rules in this crate need three things a plain `grep` cannot give
//! them: (1) code tokens with comments and string/char literals *removed*
//! (so `".unwrap()"` inside a test fixture string is not a violation),
//! (2) the comment text itself, per line (so `// SAFETY:` and
//! `// lint: ...` annotations can be found), and (3) brace structure (so
//! `#[cfg(test)] mod tests { ... }` regions can be exempted). Full
//! parsing is deliberately out of scope; every rule is documented as a
//! token-level heuristic.

/// What a code token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier, keyword or number literal (maximal word run).
    Word,
    /// Single punctuation character.
    Punct,
    /// A string/char/byte literal (contents discarded).
    Literal,
    /// A lifetime (`'a`), name discarded.
    Lifetime,
}

/// One code token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind.
    pub kind: Kind,
    /// Token text (empty for [`Kind::Literal`] / [`Kind::Lifetime`]).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Token {
    /// True for a word token with exactly this text.
    pub fn is_word(&self, w: &str) -> bool {
        self.kind == Kind::Word && self.text == w
    }

    /// True for a punct token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// A lexed source file: code tokens, comment text per line, raw lines.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order (comments and literal contents gone).
    pub tokens: Vec<Token>,
    /// `(line, text)` of every comment, in source order. Multi-line
    /// block comments contribute one entry per line they span.
    pub comments: Vec<(usize, String)>,
    /// The raw source split into lines (1-based access via `line - 1`).
    pub lines: Vec<String>,
}

impl Lexed {
    /// All comment text on a given 1-based line, concatenated.
    pub fn comment_on(&self, line: usize) -> String {
        self.comments
            .iter()
            .filter(|(l, _)| *l == line)
            .map(|(_, t)| t.as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

fn is_word_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes `src`. Invalid syntax never panics — the lexer treats anything
/// unrecognised as punctuation and carries on (linting a file that does
/// not compile is allowed to be approximate).
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed {
        lines: src.lines().map(str::to_string).collect(),
        ..Lexed::default()
    };
    let mut i = 0usize;
    let mut line = 1usize;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            // Line comment (//, ///, //!).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push((line, src[start..i].to_string()));
            }
            // Block comment, possibly nested; one comment entry per line.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                let mut seg_start = i;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out.comments.push((line, src[seg_start..i].to_string()));
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i
                    .saturating_sub(if depth == 0 { 2 } else { 0 })
                    .max(seg_start);
                out.comments.push((line, src[seg_start..end].to_string()));
            }
            // Raw strings r"...", r#"..."# (and br variants via the word
            // branch below, which re-dispatches here).
            b'r' if starts_raw_string(b, i) => {
                i = skip_raw_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'b' if b.get(i + 1) == Some(&b'r') && starts_raw_string(b, i + 1) => {
                i = skip_raw_string(b, i + 2, &mut line);
                out.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'b' if b.get(i + 1) == Some(&b'"') => {
                i = skip_string(b, i + 2, &mut line);
                out.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'b' if b.get(i + 1) == Some(&b'\'') => {
                i = skip_char(b, i + 2);
                out.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            b'"' => {
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            // `'` starts either a char literal or a lifetime.
            b'\'' => {
                if is_char_literal(b, i) {
                    i = skip_char(b, i + 1);
                    out.tokens.push(Token {
                        kind: Kind::Literal,
                        text: String::new(),
                        line,
                    });
                } else {
                    i += 1;
                    while i < b.len() && is_word_char(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: Kind::Lifetime,
                        text: String::new(),
                        line,
                    });
                }
            }
            c if is_word_char(c) => {
                let start = i;
                while i < b.len() && is_word_char(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: Kind::Word,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            _ => {
                out.tokens.push(Token {
                    kind: Kind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// After an `r` at `i`: does `#*"` follow?
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let mut j = i + 1;
    while b.get(j) == Some(&b'#') {
        j += 1;
    }
    b.get(j) == Some(&b'"')
}

/// Skips a raw string whose `r` has been consumed (`i` points at the
/// first `#` or the opening quote). Returns the index after the close.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    i += 1; // opening quote
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while seen < hashes && b.get(j) == Some(&b'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a normal string whose opening quote has been consumed.
fn skip_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips a char/byte-char literal whose opening quote has been
/// consumed. Returns the index after the closing quote.
fn skip_char(b: &[u8], mut i: usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\'' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Is the `'` at `i` a char literal (vs. a lifetime)? A char literal is
/// `'\...'` or `'X'` for a single char X; a lifetime is `'word` with no
/// closing quote right after.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    match b.get(i + 1) {
        Some(&b'\\') => true,
        Some(&c) if is_word_char(c) => b.get(i + 2) == Some(&b'\''),
        Some(_) => true, // e.g. '(' — punctuation chars are always literals
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn words(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Word)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_word_tokens() {
        let src = r##"
            // unwrap in a comment
            /* panic! in a block
               spanning lines */
            let s = "contains .unwrap() and panic!";
            let r = r#"raw with partial_cmp"#;
            let c = 'x';
            let esc = '\'';
        "##;
        let w = words(src);
        assert!(!w.contains(&"unwrap".to_string()), "{w:?}");
        assert!(!w.contains(&"panic".to_string()));
        assert!(!w.contains(&"partial_cmp".to_string()));
        assert!(w.contains(&"let".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lexed.tokens.iter().any(|t| t.kind == Kind::Lifetime));
        assert!(lexed.tokens.iter().any(|t| t.is_word("str")));
    }

    #[test]
    fn comments_are_recorded_per_line() {
        let lexed = lex("let x = 1; // SAFETY: same line\n// next line\nlet y = 2;");
        assert!(lexed.comment_on(1).contains("SAFETY:"));
        assert!(lexed.comment_on(2).contains("next line"));
        assert_eq!(lexed.comment_on(3), "");
    }

    #[test]
    fn line_numbers_survive_multiline_strings() {
        let lexed = lex("let s = \"line\none\";\nlet t = 3;");
        let t = lexed.tokens.iter().find(|t| t.is_word("t")).unwrap();
        assert_eq!(t.line, 3);
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let w = words("/* outer /* inner */ still comment */ let z = 1;");
        assert_eq!(w, vec!["let", "z", "1"]);
    }
}
