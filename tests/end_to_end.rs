//! End-to-end integration: simulate → embed → classify, asserting the
//! paper's *qualitative* results at test scale:
//!
//! * DarkVec beats the port-feature baseline;
//! * domain-knowledge/auto services beat the single service;
//! * Engin-Umich is recovered perfectly; Stretchoid poorly;
//! * coverage grows with the training window.

use darkvec::config::{DarkVecConfig, ServiceDef};
use darkvec::pipeline;
use darkvec::supervised::Evaluation;
use darkvec_baselines::port_features::{baseline_report, PortFeatureConfig};
use darkvec_gen::{simulate, GtClass, SimConfig, SimOutput};
use darkvec_types::Ipv4;
use std::collections::HashMap;
use std::sync::OnceLock;

const SEED: u64 = 1001;

/// Shared simulation + labels: computed once across all tests in this file.
fn fixture() -> &'static (SimOutput, HashMap<Ipv4, u32>) {
    static FIXTURE: OnceLock<(SimOutput, HashMap<Ipv4, u32>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let sim = simulate(&SimConfig::tiny(SEED));
        let labels = sim
            .truth
            .eval_labels(&sim.trace, 10)
            .into_iter()
            .map(|(ip, c)| (ip, c.label()))
            .collect();
        (sim, labels)
    })
}

fn test_cfg(service: ServiceDef) -> DarkVecConfig {
    let mut cfg = DarkVecConfig::test_size(SEED);
    cfg.service = service;
    cfg
}

fn accuracy(service: ServiceDef, k: usize) -> f64 {
    let (sim, labels) = fixture();
    let model = pipeline::run(&sim.trace, &test_cfg(service));
    Evaluation::prepare(&model.embedding, labels, 10, GtClass::Unknown.label(), k, 0).accuracy(k)
}

#[test]
fn darkvec_beats_the_port_feature_baseline() {
    let (sim, labels) = fixture();
    let dv = accuracy(ServiceDef::DomainKnowledge, 7);
    let last = sim.trace.last_day();
    let base = baseline_report(
        &last,
        labels,
        &GtClass::names(),
        GtClass::Unknown.label(),
        &PortFeatureConfig::default(),
    )
    .accuracy;
    assert!(
        dv > base + 0.05,
        "DarkVec ({dv:.3}) should clearly beat the baseline ({base:.3})"
    );
    assert!(dv > 0.75, "DarkVec accuracy too low: {dv:.3}");
}

#[test]
fn service_definition_ordering_matches_paper() {
    // Figure 7 / Table 4: single service is significantly worse.
    let single = accuracy(ServiceDef::Single, 7);
    let domain = accuracy(ServiceDef::DomainKnowledge, 7);
    let auto = accuracy(ServiceDef::Auto(10), 7);
    assert!(
        domain > single + 0.05,
        "domain ({domain:.3}) must beat single ({single:.3})"
    );
    assert!(
        auto > single + 0.05,
        "auto ({auto:.3}) must beat single ({single:.3})"
    );
}

#[test]
fn engin_umich_is_perfectly_recalled_stretchoid_is_not() {
    let (sim, labels) = fixture();
    let model = pipeline::run(&sim.trace, &test_cfg(ServiceDef::DomainKnowledge));
    let ev = Evaluation::prepare(&model.embedding, labels, 10, GtClass::Unknown.label(), 7, 0);
    let report = ev.report(7, &GtClass::names());

    let engin = report.row("Engin-umich").expect("engin row");
    assert!(
        engin.support > 0,
        "no labelled Engin-Umich senders in test set"
    );
    assert!(
        engin.recall >= 0.9,
        "Engin-Umich should be (near-)perfectly recalled, got {:.2}",
        engin.recall
    );

    let stretchoid = report.row("Stretchoid").expect("stretchoid row");
    assert!(stretchoid.support > 0);
    assert!(
        stretchoid.recall < engin.recall,
        "Stretchoid ({:.2}) must trail Engin-Umich ({:.2}) — its pattern is irregular",
        stretchoid.recall,
        engin.recall
    );
}

#[test]
fn mirai_dominant_class_is_well_classified() {
    let (sim, labels) = fixture();
    let model = pipeline::run(&sim.trace, &test_cfg(ServiceDef::DomainKnowledge));
    let ev = Evaluation::prepare(&model.embedding, labels, 10, GtClass::Unknown.label(), 7, 0);
    let report = ev.report(7, &GtClass::names());
    let mirai = report.row("Mirai-like").expect("mirai row");
    assert!(mirai.support > 20, "mirai support {}", mirai.support);
    // At test scale the Mirai fleet is ~300 senders (vs 7 351 in the
    // paper) over 8 days, so per-sender evidence is far thinner; require
    // a clear signal rather than the paper's 0.98 F-score.
    assert!(mirai.f_score > 0.55, "Mirai F-score {:.2}", mirai.f_score);
    assert!(mirai.recall > 0.5, "Mirai recall {:.2}", mirai.recall);
}

#[test]
fn coverage_grows_with_training_window() {
    // Figure 6: longer training window embeds more of the labelled set.
    let (sim, labels) = fixture();
    let days = sim.trace.days();
    let short = pipeline::run(
        &sim.trace.first_days(days / 4),
        &test_cfg(ServiceDef::DomainKnowledge),
    );
    let long = pipeline::run(&sim.trace, &test_cfg(ServiceDef::DomainKnowledge));
    let c_short = Evaluation::coverage(&short.embedding, labels);
    let c_long = Evaluation::coverage(&long.embedding, labels);
    assert!(
        c_long > c_short,
        "coverage must grow: {c_short:.3} (short) vs {c_long:.3} (full)"
    );
    assert!(
        c_long > 0.95,
        "full-window coverage should be near total: {c_long:.3}"
    );
}

#[test]
fn accuracy_degrades_for_very_large_k() {
    // Figure 7: past the sweet spot, Unknown neighbours dominate.
    let (sim, labels) = fixture();
    let model = pipeline::run(&sim.trace, &test_cfg(ServiceDef::DomainKnowledge));
    let ev = Evaluation::prepare(
        &model.embedding,
        labels,
        10,
        GtClass::Unknown.label(),
        75,
        0,
    );
    let at_7 = ev.accuracy(7);
    let at_75 = ev.accuracy(75);
    assert!(
        at_7 >= at_75,
        "k=7 ({at_7:.3}) should not be worse than a huge k=75 ({at_75:.3})"
    );
}

/// Golden regression: the full fixed-seed pipeline must keep producing
/// (numerically) the same headline metrics. Tolerances are wide enough to
/// absorb kernel-path rounding differences (SIMD vs `--no-simd` runs are
/// equal to ~1e-5 per operation, which training amplifies), but tight
/// enough that a real behaviour change — a different corpus, a broken
/// update rule, a changed tie-break — trips them.
#[test]
fn golden_pipeline_metrics_are_stable() {
    use darkvec::unsupervised::{cluster_embedding, ClusterConfig};

    const EXPECTED_MACRO_F1: f64 = 0.835;
    const EXPECTED_CLUSTERS: i64 = 33;
    const EXPECTED_MODULARITY: f64 = 0.916;

    let (sim, labels) = fixture();
    let mut cfg = test_cfg(ServiceDef::DomainKnowledge);
    cfg.w2v.threads = 1; // bit-stable training within one kernel path
    let model = pipeline::run(&sim.trace, &cfg);

    let ev = Evaluation::prepare(&model.embedding, labels, 10, GtClass::Unknown.label(), 7, 0);
    let report = ev.report(7, &GtClass::names());
    let unknown = GtClass::Unknown.label();
    let (mut f1_sum, mut classes) = (0.0f64, 0usize);
    for row in &report.rows {
        if row.label != unknown && row.support > 0 {
            f1_sum += row.f_score;
            classes += 1;
        }
    }
    assert!(classes > 0, "no evaluated classes in the fixture");
    let macro_f1 = f1_sum / classes as f64;

    let clustering = cluster_embedding(
        &model.embedding,
        &ClusterConfig {
            k: 3,
            seed: SEED,
            threads: 1,
            ..Default::default()
        },
    );
    println!(
        "golden: macro_f1={macro_f1:.4} clusters={} modularity={:.4}",
        clustering.clusters, clustering.modularity
    );
    assert!(
        (macro_f1 - EXPECTED_MACRO_F1).abs() <= 0.05,
        "macro-F1 drifted: {macro_f1:.4} vs expected {EXPECTED_MACRO_F1}"
    );
    assert!(
        (clustering.clusters as i64 - EXPECTED_CLUSTERS).abs() <= 2,
        "cluster count drifted: {} vs expected {EXPECTED_CLUSTERS}",
        clustering.clusters
    );
    assert!(
        (clustering.modularity - EXPECTED_MODULARITY).abs() <= 0.05,
        "modularity drifted: {:.4} vs expected {EXPECTED_MODULARITY}",
        clustering.modularity
    );
}
