//! §6.4 — extending the ground truth.
//!
//! "Given the set of Unknown IP addresses classified as one GT class, we
//! sort them by increasing average distance to their k-NN and manually
//! check if the assigned label could be correct." The paper reports this
//! qualitatively ("new senders performing scan patterns very similar to
//! Shodan servers, other senders being very likely part of the Censys
//! network"); the simulator's hidden campaign layer lets us *score* it:
//! for each proposed extension we check whether the sender's hidden
//! campaign is consistent with the proposed class.

use crate::table::{f, TextTable};
use crate::Ctx;
use darkvec::gt_extend::extend_ground_truth;
use darkvec::supervised::Evaluation;
use darkvec_gen::{CampaignId, GtClass};
use std::collections::HashMap;

/// Whether a hidden campaign is a plausible member of a GT class (the
/// "manual check" an analyst would perform, automated against the
/// simulator's truth).
fn consistent(campaign: CampaignId, class: GtClass) -> bool {
    match class {
        // The unknown5 Mirai extension *is* Mirai-like behaviour — the
        // paper's §7.3.3 makes exactly this call.
        GtClass::MiraiLike => {
            matches!(campaign, CampaignId::MiraiCore | CampaignId::U5MiraiExt)
        }
        GtClass::Censys => matches!(campaign, CampaignId::Censys(_) | CampaignId::CensysSporadic),
        GtClass::Stretchoid => campaign == CampaignId::Stretchoid,
        GtClass::InternetCensus => campaign == CampaignId::InternetCensus,
        GtClass::BinaryEdge => campaign == CampaignId::BinaryEdge,
        GtClass::Sharashka => campaign == CampaignId::Sharashka,
        GtClass::Ipip => campaign == CampaignId::Ipip,
        GtClass::Shodan => campaign == CampaignId::Shodan,
        GtClass::EnginUmich => campaign == CampaignId::EnginUmich,
        GtClass::Unknown => true,
    }
}

/// Runs the extension procedure and scores it against the hidden truth.
pub fn gt_extend(ctx: &Ctx) -> String {
    let model = ctx.model();
    let labels = ctx.last_day_ml_labels();
    let ev = Evaluation::prepare(
        &model.embedding,
        &labels,
        10,
        GtClass::Unknown.label(),
        7,
        0,
    );
    let extensions = extend_ground_truth(
        &model.embedding,
        ev.neighbors(),
        ev.labels(),
        GtClass::Unknown.label(),
        7,
    );

    let mut out = String::from("Section 6.4: ground-truth extension by embedding distance\n\n");
    let mut per_class: HashMap<u32, (usize, usize)> = HashMap::new();
    for e in &extensions {
        let entry = per_class.entry(e.class).or_insert((0, 0));
        entry.0 += 1;
        if let Some(campaign) = ctx.truth().campaign(e.ip) {
            if let Some(class) = GtClass::from_label(e.class) {
                if consistent(campaign, class) {
                    entry.1 += 1;
                }
            }
        }
    }

    let mut t = TextTable::new(vec![
        "proposed class",
        "extensions",
        "consistent with hidden truth",
        "precision",
    ]);
    let mut total = (0usize, 0usize);
    for class in GtClass::ALL {
        let Some(&(n, good)) = per_class.get(&class.label()) else {
            continue;
        };
        t.row(vec![
            class.name().to_string(),
            n.to_string(),
            good.to_string(),
            f(good as f64 / n.max(1) as f64, 2),
        ]);
        total.0 += n;
        total.1 += good;
    }
    t.row(vec![
        "Total".to_string(),
        total.0.to_string(),
        total.1.to_string(),
        f(total.1 as f64 / total.0.max(1) as f64, 2),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nEach row proposes labels for previously-Unknown senders whose neighbourhood sits\ninside a GT class within that class's own distance spread; precision is checked\nagainst the simulator's hidden campaign layer (the analyst's 'manual check').\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_rules() {
        assert!(consistent(CampaignId::U5MiraiExt, GtClass::MiraiLike));
        assert!(consistent(CampaignId::Censys(3), GtClass::Censys));
        assert!(!consistent(CampaignId::U1NetBios, GtClass::Shodan));
        assert!(consistent(CampaignId::MiscUnknown, GtClass::Unknown));
    }
}
