//! End-to-end pipeline configuration.

use darkvec_types::HOUR;
use darkvec_w2v::TrainConfig;

/// Which service definition to use (§5.2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceDef {
    /// All ports in a single service.
    Single,
    /// One service per top-`n` popular (port, protocol) key, plus a
    /// catch-all. The paper uses `n = 10`.
    Auto(usize),
    /// The domain-knowledge map of Table 7.
    DomainKnowledge,
}

/// The sliding window of the incremental pipeline: each step trains on the
/// most recent `days` days and the window advances by `stride` days between
/// steps (§6.2.1 evaluates training-window length; the incremental runner
/// warm-starts each step from the previous one).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlidingWindow {
    /// Days of traffic per training window.
    pub days: u64,
    /// Days the window advances between steps.
    pub stride: u64,
}

impl Default for SlidingWindow {
    fn default() -> Self {
        // The paper's best supervised setting trains on a 30-day window;
        // stride 1 re-embeds every day, the deployment cadence of §8.
        SlidingWindow {
            days: 30,
            stride: 1,
        }
    }
}

/// Full DarkVec configuration.
///
/// The default is the paper's best setting: domain-knowledge services,
/// ΔT = 1 h, 10-packet activity filter, `V = 50`, `c = 25`, 10 epochs.
#[derive(Clone, Debug)]
pub struct DarkVecConfig {
    /// Service definition.
    pub service: ServiceDef,
    /// Sequence window ΔT in seconds.
    pub dt: u64,
    /// Activity filter: minimum packets per sender in the training trace.
    pub min_packets: u64,
    /// Word2Vec hyper-parameters (dimension `V`, window `c`, epochs, …).
    pub w2v: TrainConfig,
    /// Sliding window of the incremental pipeline ([`crate::incremental`]).
    /// Ignored by the one-shot [`crate::pipeline::run`].
    pub window: SlidingWindow,
}

impl Default for DarkVecConfig {
    fn default() -> Self {
        DarkVecConfig {
            service: ServiceDef::DomainKnowledge,
            dt: HOUR,
            min_packets: 10,
            // The activity filter guarantees every remaining sender has
            // >= min_packets tokens; min_count = 1 keeps the embedding
            // coverage identical to the filter's output.
            w2v: TrainConfig {
                min_count: 1,
                ..TrainConfig::default()
            },
            window: SlidingWindow::default(),
        }
    }
}

impl DarkVecConfig {
    /// A canonical string of every parameter that determines the *trained
    /// artifacts* — the cache-key material. Excludes execution details that
    /// change wall clock but not (single-threaded) results: thread count
    /// and the observer. Excludes the sliding window too: a per-day corpus
    /// or per-window model is the same artifact whichever window schedule
    /// requested it.
    pub fn fingerprint(&self) -> String {
        let w = &self.w2v;
        format!(
            "service={:?};dt={};min_packets={};arch={:?};loss={:?};dim={};window={};negative={};epochs={};alpha={};min_alpha={};subsample={};min_count={};seed={}",
            self.service,
            self.dt,
            self.min_packets,
            w.arch,
            w.loss,
            w.dim,
            w.window,
            w.negative,
            w.epochs,
            w.alpha,
            w.min_alpha,
            w.subsample,
            w.min_count,
            w.seed,
        )
    }

    /// FNV-1a hash of [`DarkVecConfig::fingerprint`] — the compact form
    /// cache keys and model files embed.
    pub fn fingerprint_hash(&self) -> u64 {
        crate::cache::fnv1a64(self.fingerprint().as_bytes())
    }

    /// A configuration sized for fast unit tests (small model, 1 thread,
    /// deterministic).
    pub fn test_size(seed: u64) -> Self {
        DarkVecConfig {
            w2v: TrainConfig {
                dim: 24,
                window: 10,
                epochs: 8,
                min_count: 1,
                threads: 0,
                seed,
                ..TrainConfig::default()
            },
            ..DarkVecConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_best() {
        let c = DarkVecConfig::default();
        assert_eq!(c.service, ServiceDef::DomainKnowledge);
        assert_eq!(c.dt, HOUR);
        assert_eq!(c.min_packets, 10);
        assert_eq!(c.w2v.dim, 50);
        assert_eq!(c.w2v.window, 25);
    }

    #[test]
    fn service_def_equality() {
        assert_eq!(ServiceDef::Auto(10), ServiceDef::Auto(10));
        assert_ne!(ServiceDef::Auto(10), ServiceDef::Auto(5));
        assert_ne!(ServiceDef::Single, ServiceDef::DomainKnowledge);
    }

    #[test]
    fn fingerprint_tracks_result_parameters_only() {
        let base = DarkVecConfig::default();
        assert_eq!(
            base.fingerprint_hash(),
            DarkVecConfig::default().fingerprint_hash()
        );

        let mut seed = base.clone();
        seed.w2v.seed += 1;
        assert_ne!(base.fingerprint_hash(), seed.fingerprint_hash());

        let mut dt = base.clone();
        dt.dt *= 2;
        assert_ne!(base.fingerprint_hash(), dt.fingerprint_hash());

        // Execution details and the window schedule do not change what a
        // cached artifact *is*.
        let mut threads = base.clone();
        threads.w2v.threads = 7;
        assert_eq!(base.fingerprint_hash(), threads.fingerprint_hash());

        let mut win = base.clone();
        win.window = SlidingWindow { days: 4, stride: 2 };
        assert_eq!(base.fingerprint_hash(), win.fingerprint_hash());
    }
}
