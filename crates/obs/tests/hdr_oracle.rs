//! Property test: HDR histogram quantiles vs. an exact sorted-sample
//! oracle.
//!
//! For every distribution we record >= 10k samples into a
//! [`darkvec_obs::metrics::Histogram`] and compare its p50/p90/p99/p99.9
//! against the exact nearest-rank quantile of the sorted sample vector.
//! The histogram must agree within the documented bound
//! [`darkvec_obs::hdr::MAX_RELATIVE_ERROR`] (1/64 ≈ 1.6%), plus one unit
//! of integer quantization; values below the sub-bucket resolution (32)
//! must be exact.

use darkvec_obs::hdr;
use darkvec_obs::metrics::Histogram;

const SAMPLES: usize = 20_000;
const QUANTILES: [f64; 4] = [0.50, 0.90, 0.99, 0.999];

/// SplitMix64 — deterministic, seedable, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// Exponential-ish: uniform mantissa at a geometrically chosen scale,
    /// the shape that stresses every octave of the bucketing.
    fn long_tail(&mut self, max_shift: u32) -> u64 {
        let shift = self.next() % u64::from(max_shift);
        self.uniform(0, 256) << shift
    }
}

/// Exact nearest-rank quantile (`rank = ceil(q * n)`, 1-based), matching
/// the definition documented for [`Histogram::quantile`].
fn oracle(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Records the samples, then asserts every quantile in `QUANTILES`
/// agrees with the oracle within the documented relative-error bound.
fn check_distribution(label: &str, mut samples: Vec<u64>) {
    assert!(
        samples.len() >= 10_000,
        "{label}: property needs >= 10k samples"
    );
    let h = Histogram::default();
    for &v in &samples {
        h.record(v);
    }
    samples.sort_unstable();
    for q in QUANTILES {
        let exact = oracle(&samples, q);
        let approx = h.quantile(q);
        // The histogram reports the midpoint of the bucket holding the
        // exact value, so the allowed error is relative to the exact
        // quantile: MAX_RELATIVE_ERROR of it, plus 1 for integer
        // midpoint rounding. Below the sub-bucket resolution every
        // value has its own bucket and the answer must be exact.
        let allowed = if exact < 32 {
            0.0
        } else {
            exact as f64 * hdr::MAX_RELATIVE_ERROR + 1.0
        };
        let err = (approx as f64 - exact as f64).abs();
        assert!(
            err <= allowed,
            "{label} p{}: histogram {approx} vs exact {exact} \
             (err {err:.1} > allowed {allowed:.1})",
            q * 100.0
        );
    }
}

#[test]
fn uniform_small_values_are_exact() {
    let mut rng = Rng(1);
    check_distribution(
        "uniform[0,32)",
        (0..SAMPLES).map(|_| rng.uniform(0, 32)).collect(),
    );
}

#[test]
fn uniform_wide_range() {
    let mut rng = Rng(2);
    check_distribution(
        "uniform[0,1e9)",
        (0..SAMPLES)
            .map(|_| rng.uniform(0, 1_000_000_000))
            .collect(),
    );
}

#[test]
fn latency_like_long_tail() {
    // Microsecond-to-second latencies: most mass low, tail 5 orders of
    // magnitude up — the shape kNN query latency actually has.
    let mut rng = Rng(3);
    check_distribution(
        "long-tail",
        (0..SAMPLES).map(|_| rng.long_tail(40)).collect(),
    );
}

#[test]
fn bimodal_cache_hit_miss() {
    // Two tight modes far apart, like cache hit vs. miss latency.
    let mut rng = Rng(4);
    check_distribution(
        "bimodal",
        (0..SAMPLES)
            .map(|_| {
                if rng.next() % 10 < 7 {
                    rng.uniform(800, 1_200)
                } else {
                    rng.uniform(4_000_000, 6_000_000)
                }
            })
            .collect(),
    );
}

#[test]
fn constant_distribution_is_recovered() {
    check_distribution("constant", vec![123_456; SAMPLES]);
}

#[test]
fn extreme_values_do_not_break_the_bound() {
    let mut rng = Rng(5);
    check_distribution(
        "extremes",
        (0..SAMPLES)
            .map(|_| match rng.next() % 4 {
                0 => 0,
                1 => u64::MAX,
                2 => rng.uniform(0, 64),
                _ => rng.long_tail(62),
            })
            .collect(),
    );
}
