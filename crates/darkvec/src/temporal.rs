//! Temporal-regularity analysis of sender groups.
//!
//! Table 5's evidence column repeatedly reads temporal structure out of a
//! cluster: "very regular daily pattern", "regular hourly pattern",
//! "increasing activity". This module derives those judgements from a
//! group's hourly packet series:
//!
//! * [`autocorrelation`] — normalised autocorrelation of the series;
//! * [`dominant_period`] — the lag with the strongest autocorrelation
//!   peak (e.g. 24 h for a daily scanner);
//! * [`trend`] — least-squares slope, normalised by the mean, for
//!   worm-style growth detection (Figure 15).

/// Normalised autocorrelation of `series` at `lag` (Pearson-style, mean
/// removed). Returns 0 for degenerate inputs.
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    let n = series.len();
    if lag == 0 || lag >= n {
        return if lag == 0 { 1.0 } else { 0.0 };
    }
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        // A perfectly flat series is perfectly periodic at every lag.
        return 1.0;
    }
    let cov: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    cov / var
}

/// The dominant period of a series: the lag in `2..=max_lag` whose
/// autocorrelation is a local maximum with the highest value. Returns
/// `(lag, strength)` or `None` if nothing exceeds `min_strength`.
pub fn dominant_period(series: &[f64], max_lag: usize, min_strength: f64) -> Option<(usize, f64)> {
    if series.len() < 6 {
        return None;
    }
    let max_lag = max_lag.min(series.len() / 2);
    let ac: Vec<f64> = (0..=max_lag).map(|l| autocorrelation(series, l)).collect();
    let mut best: Option<(usize, f64)> = None;
    for lag in 2..max_lag {
        // Local maximum of the autocorrelation curve.
        if ac[lag] >= ac[lag - 1]
            && ac[lag] >= ac[lag + 1]
            && ac[lag] >= min_strength
            && best.map(|(_, s)| ac[lag] > s).unwrap_or(true)
        {
            best = Some((lag, ac[lag]));
        }
    }
    best
}

/// Least-squares slope of the series divided by its mean — a unitless
/// growth rate per step. Positive ≈ ramping (worm-like), near zero ≈
/// stationary. Returns 0 for degenerate inputs.
pub fn trend(series: &[f64]) -> f64 {
    let n = series.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mean_x = (nf - 1.0) / 2.0;
    let mean_y = series.iter().sum::<f64>() / nf;
    if mean_y == 0.0 {
        return 0.0;
    }
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in series.iter().enumerate() {
        let dx = i as f64 - mean_x;
        sxy += dx * (y - mean_y);
        sxx += dx * dx;
    }
    (sxy / sxx) / mean_y
}

/// A human-readable regularity judgement for an hourly series.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Regularity {
    /// Strong ~24h periodicity.
    Daily,
    /// Strong short-period (< 12h) periodicity or near-flat series.
    Hourly,
    /// Clear monotone growth.
    Growing,
    /// None of the above.
    Irregular,
}

impl Regularity {
    /// Stable lowercase name, used in reports and wire messages.
    pub fn name(&self) -> &'static str {
        match self {
            Regularity::Daily => "daily",
            Regularity::Hourly => "hourly",
            Regularity::Growing => "growing",
            Regularity::Irregular => "irregular",
        }
    }
}

/// Classifies an hourly packet series.
pub fn classify_hourly(series: &[f64]) -> Regularity {
    // Growing: the fitted line gains more than 100% of the mean level
    // across the observed span (length-independent criterion).
    if trend(series) * series.len() as f64 > 1.0 {
        return Regularity::Growing;
    }
    if let Some((lag, _)) = dominant_period(series, 48, 0.3) {
        if (20..=28).contains(&lag) {
            return Regularity::Daily;
        }
        if lag < 12 {
            return Regularity::Hourly;
        }
    }
    // A flat series (every hour similar) is the "very regular hourly
    // pattern" of unknown1: low relative variance, no need for a peak.
    let n = series.len() as f64;
    if n >= 6.0 {
        let mean = series.iter().sum::<f64>() / n;
        if mean > 0.0 {
            let var = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
            if var.sqrt() / mean < 0.5 {
                return Regularity::Hourly;
            }
        }
    }
    Regularity::Irregular
}

#[cfg(test)]
mod tests {
    use super::*;

    fn daily_series() -> Vec<f64> {
        // 10 days of hourly counts with a clear 24h cycle.
        (0..240)
            .map(|h| if h % 24 < 2 { 100.0 } else { 1.0 })
            .collect()
    }

    #[test]
    fn autocorrelation_basics() {
        let s = daily_series();
        assert_eq!(autocorrelation(&s, 0), 1.0);
        assert!(
            autocorrelation(&s, 24) > 0.8,
            "ac24 = {}",
            autocorrelation(&s, 24)
        );
        assert!(autocorrelation(&s, 12) < 0.2);
        assert_eq!(autocorrelation(&s, 10_000), 0.0);
    }

    #[test]
    fn autocorrelation_of_flat_series_is_one() {
        let s = vec![5.0; 50];
        assert_eq!(autocorrelation(&s, 7), 1.0);
    }

    #[test]
    fn dominant_period_finds_daily_cycle() {
        let s = daily_series();
        let (lag, strength) = dominant_period(&s, 48, 0.3).expect("a period");
        assert_eq!(lag, 24);
        assert!(strength > 0.8);
    }

    #[test]
    fn dominant_period_none_for_noise() {
        // Deterministic pseudo-noise.
        let mut state = 1u64;
        let s: Vec<f64> = (0..200)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) % 100) as f64
            })
            .collect();
        assert!(dominant_period(&s, 48, 0.5).is_none());
    }

    #[test]
    fn trend_detects_growth() {
        let growing: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // Linear 0..N: slope 1, mean N/2 => normalised trend ~ 2/N.
        assert!((trend(&growing) - 2.0 / 100.0).abs() < 1e-3);
        let flat = vec![10.0; 100];
        assert!(trend(&flat).abs() < 1e-12);
        let shrinking: Vec<f64> = (0..100).map(|i| (100 - i) as f64).collect();
        assert!(trend(&shrinking) < 0.0);
    }

    #[test]
    fn classify_shapes() {
        assert_eq!(classify_hourly(&daily_series()), Regularity::Daily);
        let hourly: Vec<f64> = (0..200)
            .map(|h| if h % 4 == 0 { 50.0 } else { 2.0 })
            .collect();
        assert_eq!(classify_hourly(&hourly), Regularity::Hourly);
        let growing: Vec<f64> = (0..200).map(|i| 1.0 + i as f64 * 0.5).collect();
        assert_eq!(classify_hourly(&growing), Regularity::Growing);
        let flat = vec![7.0; 100];
        assert_eq!(classify_hourly(&flat), Regularity::Hourly);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(trend(&[]), 0.0);
        assert_eq!(trend(&[1.0]), 0.0);
        assert!(dominant_period(&[1.0, 2.0], 48, 0.3).is_none());
        assert_eq!(classify_hourly(&[]), Regularity::Irregular);
    }
}
