//! Offline mini reimplementation of the `proptest` API subset this
//! workspace uses.
//!
//! Supported surface: the [`proptest!`] macro (with an optional
//! `#![proptest_config(…)]` header), range and tuple strategies,
//! [`Just`], [`any`], `prop::collection::{vec, hash_set}`,
//! `prop_map`/`prop_flat_map`, [`prop_oneof!`], and the `prop_assert*`
//! macros. Failing cases panic with the case number; there is no input
//! shrinking or failure persistence.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The deterministic RNG driving value generation.
pub type TestRng = SmallRng;

/// The RNG for one test case: deterministic in (test name, case index).
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x5EED))
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Test cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values. Dyn-compatible; combinators require
/// `Sized` receivers.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn gen_one(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        (**self).gen_one(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen_one(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_one(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_one(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_one(rng)).gen_one(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_one(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_one(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_one(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_one(rng),)+)
            }
        }
    )*};
}
impl_strategy_for_tuples! {
    (A/0);
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
    (A/0, B/1, C/2, D/3, E/4);
    (A/0, B/1, C/2, D/3, E/4, F/5);
}

/// Uniform choice among same-typed strategies; backs [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_one(&self, rng: &mut TestRng) -> T {
        let i = rng.random_range(0..self.options.len());
        self.options[i].gen_one(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// A collection-size specification: a fixed `usize` or a `Range<usize>`.
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s of `len` in the given range, elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `vec(element, 0..300)` — a vector with length drawn from `len`
    /// (a fixed `usize` length also works).
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.gen_one(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s; see [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `hash_set(element, 1..25)` — a set with size drawn from `len`
    /// (best-effort: duplicates are redrawn a bounded number of times).
    pub fn hash_set<S>(element: S, len: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, len }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn gen_one(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let n = rng.random_range(self.len.clone());
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 100 {
                out.insert(self.element.gen_one(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! Everything a property-test module needs, mirroring
    //! `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (panics on failure).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($option)),+])
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    // Internal: one test fn at a time, with a resolved config expression.
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    let mut prop_rng = $crate::test_rng(stringify!($name), case);
                    $(let $pat = $crate::Strategy::gen_one(&($strategy), &mut prop_rng);)*
                    $body
                }));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest: {} failed at case {}/{} (deterministic; rerun reproduces it)",
                        stringify!($name), case, cfg.cases,
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry with an explicit config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    // Entry with the default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@run (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..1_000).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0f64..1.0, z in 3u8..=5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
            prop_assert!((3..=5).contains(&z));
        }

        #[test]
        fn maps_and_tuples_compose(e in arb_even(), (a, b) in (0u16..50, prop_oneof![Just(1u8), Just(2u8)])) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(a < 50);
            prop_assert!(b == 1 || b == 2);
        }

        #[test]
        fn collections_respect_sizes(v in prop::collection::vec(0u16..40, 2..30), s in prop::collection::hash_set(0u32..1_000_000, 1..25)) {
            prop_assert!((2..30).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 25);
            for x in &v { prop_assert!(*x < 40); }
        }

        #[test]
        fn flat_map_sees_outer_value(pair in (2usize..10).prop_flat_map(|n| prop::collection::vec(0usize..n, 1..4).prop_map(move |v| (n, v)))) {
            let (n, v) = pair;
            for x in v { prop_assert!(x < n); }
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0u64..100, 1..20)) {
            v.sort_unstable();
            for w in v.windows(2) { prop_assert!(w[0] <= w[1]); }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t", 3);
        let mut b = crate::test_rng("t", 3);
        let s = prop::collection::vec(0u64..1_000, 5..20);
        assert_eq!(s.gen_one(&mut a), s.gen_one(&mut b));
    }
}
