//! The leave-one-out k-NN majority-vote classifier (§6.1).
//!
//! For each labelled sender, the paper takes its `k` nearest neighbours in
//! the embedded space under cosine similarity and predicts the majority
//! label among them; "Unknown" neighbours vote too, which is why accuracy
//! degrades for large `k` (§6.2.2: "the Unknown senders dominate the
//! neighborhood for large k").

use crate::knn::Neighbor;
use std::collections::HashMap;

/// Class label: a dense id. Callers keep the id → name mapping.
pub type Label = u32;

/// The result of a leave-one-out classification pass.
#[derive(Clone, Debug)]
pub struct LooOutcome {
    /// Predicted label per point, aligned with the input rows.
    pub predictions: Vec<Label>,
}

impl LooOutcome {
    /// Accuracy over the points whose true label is in `eval_classes`
    /// (the paper evaluates GT1–GT9 only, skipping Unknown).
    ///
    /// Returns 0 when no point qualifies.
    pub fn accuracy(&self, truth: &[Label], eval_classes: &dyn Fn(Label) -> bool) -> f64 {
        let mut seen = 0u64;
        let mut correct = 0u64;
        for (pred, t) in self.predictions.iter().zip(truth) {
            if eval_classes(*t) {
                seen += 1;
                if pred == t {
                    correct += 1;
                }
            }
        }
        if seen == 0 {
            0.0
        } else {
            correct as f64 / seen as f64
        }
    }
}

/// Classifies every point by majority vote over its precomputed neighbour
/// lists. Ties are broken by the summed similarity of the tied classes'
/// voters, then by the smaller label for full determinism.
///
/// `neighbors[i]` must index into `labels`; only the first `k` entries of
/// each list are used (lists may be longer, allowing one kNN pass to serve
/// several `k` values, as in the paper's Figure 7 sweep).
///
/// # Panics
/// Panics if a neighbour index is out of range or `k == 0`.
pub fn loo_knn_classify(neighbors: &[Vec<Neighbor>], labels: &[Label], k: usize) -> LooOutcome {
    assert!(k > 0, "k must be positive");
    let mut predictions = Vec::with_capacity(neighbors.len());
    let mut votes: HashMap<Label, (usize, f64)> = HashMap::new();
    for neigh in neighbors {
        votes.clear();
        for n in neigh.iter().take(k) {
            let label = labels[n.index];
            let e = votes.entry(label).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += n.similarity as f64;
        }
        let winner = votes
            .iter()
            .max_by(|a, b| {
                // Vote count, then summed similarity (total_cmp: a NaN
                // similarity must not poison the winner selection), then
                // the smaller label.
                a.1 .0
                    .cmp(&b.1 .0)
                    .then_with(|| a.1 .1.total_cmp(&b.1 .1))
                    .then_with(|| b.0.cmp(a.0))
            })
            .map(|(&l, _)| l)
            .unwrap_or(0);
        predictions.push(winner);
    }
    LooOutcome { predictions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::knn_all;
    use crate::vectors::Matrix;

    fn nb(index: usize, similarity: f32) -> Neighbor {
        Neighbor { index, similarity }
    }

    #[test]
    fn majority_vote_wins() {
        let labels = vec![0, 0, 1, 1, 1];
        let neighbors = vec![vec![nb(1, 0.9), nb(2, 0.8), nb(3, 0.7)]];
        let out = loo_knn_classify(&neighbors, &labels, 3);
        assert_eq!(out.predictions, vec![1]);
    }

    #[test]
    fn tie_broken_by_similarity() {
        let labels = vec![0, 0, 1, 1];
        // One vote each: class 1's voter is more similar.
        let neighbors = vec![vec![nb(1, 0.5), nb(2, 0.9)]];
        let out = loo_knn_classify(&neighbors, &labels, 2);
        assert_eq!(out.predictions, vec![1]);
    }

    #[test]
    fn exact_tie_broken_by_smaller_label() {
        let labels = vec![9, 3, 7];
        let neighbors = vec![vec![nb(1, 0.5), nb(2, 0.5)]];
        let out = loo_knn_classify(&neighbors, &labels, 2);
        assert_eq!(out.predictions, vec![3]);
    }

    #[test]
    fn k_truncates_neighbour_lists() {
        let labels = vec![0, 1, 0, 0];
        // With k=1 the nearest (label 1) wins; with k=3 label 0 wins.
        let neighbors = vec![vec![nb(1, 0.99), nb(2, 0.5), nb(3, 0.4)]];
        assert_eq!(
            loo_knn_classify(&neighbors, &labels, 1).predictions,
            vec![1]
        );
        assert_eq!(
            loo_knn_classify(&neighbors, &labels, 3).predictions,
            vec![0]
        );
    }

    #[test]
    fn accuracy_scopes_to_eval_classes() {
        let out = LooOutcome {
            predictions: vec![0, 1, 1, 2],
        };
        let truth = vec![0, 1, 0, 9]; // class 9 plays "Unknown"
        let acc = out.accuracy(&truth, &|l| l != 9);
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
        // Nothing evaluable -> 0.
        assert_eq!(out.accuracy(&truth, &|_| false), 0.0);
    }

    #[test]
    fn end_to_end_with_knn_recovers_clusters() {
        // Two well-separated groups; LOO 3-NN should be perfect.
        let mut data = Vec::new();
        for i in 0..5 {
            data.extend_from_slice(&[1.0, 0.01 * i as f32]);
        }
        for i in 0..5 {
            data.extend_from_slice(&[0.01 * i as f32, 1.0]);
        }
        let labels: Vec<Label> = (0..10).map(|i| (i / 5) as Label).collect();
        let nn = knn_all(Matrix::new(&data, 10, 2), 3, 1);
        let out = loo_knn_classify(&nn, &labels, 3);
        assert_eq!(out.accuracy(&labels, &|_| true), 1.0);
    }
}
