//! ANN benchmark: HNSW vs the exact scan on campaign-structured senders.
//!
//! The exact all-pairs kNN is O(n²·d) and owns the pipeline's runtime
//! past ~10⁵ senders; this experiment measures what the HNSW index buys
//! and what it costs. For each matrix size it times the exact scan, one
//! HNSW build, and an `ef` (query beam width) sweep, scoring every
//! approximate result set with recall@10 against the exact lists.
//!
//! The query vectors come from a scaled-up darkvec-gen trace: campaign
//! construction (`campaigns::build_all`) assigns every sender to a
//! coordinated campaign, and each sender's vector is its campaign's
//! direction plus Gaussian jitter — the cluster structure the real
//! embedding exhibits, at sizes the real w2v trainer cannot reach in a
//! benchmark run.
//!
//! Writes `BENCH_ann.json` (repo root in a full run, the artifact
//! directory in smoke mode) and *asserts* the recall gate — a smoke run
//! in CI fails loudly if recall@10 drops below 0.9.

use crate::table::TextTable;
use crate::Ctx;
use darkvec_ml::ann::{recall_at_k, HnswConfig, HnswIndex};
use darkvec_ml::knn::knn_all_normalized;
use darkvec_ml::vectors::NormalizedMatrix;
use darkvec_ml::QuantizedMatrix;
use darkvec_obs::Json;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::time::Instant;

/// Neighbours per query — the recall@10 operating point.
const K: usize = 10;

/// Vector dimensionality, matching the paper's default embedding (V=50).
const DIM: usize = 50;

/// Query beam widths swept per size.
const EF_SWEEP: &[usize] = &[32, 64, 96, 128, 192];

/// One ef setting's measurement at one size.
struct EfPoint {
    ef: usize,
    secs: f64,
    qps: f64,
    recall: f64,
    speedup: f64,
}

/// One matrix size's measurements.
struct SizePoint {
    rows: usize,
    exact_secs: f64,
    exact_qps: f64,
    build_secs: f64,
    /// Index memory per backend: f32 rows, HNSW rows + graph, and the
    /// int8 twins of both (quantized rows at ~29.5% of f32).
    memory: MemoryPoint,
    points: Vec<EfPoint>,
}

/// Resident index bytes per backend at one size.
struct MemoryPoint {
    f32_rows: usize,
    int8_rows: usize,
    graph: usize,
}

/// Runs the sweep and writes `BENCH_ann.json`.
pub fn ann(ctx: &Ctx) -> String {
    let sizes: &[usize] = if ctx.smoke {
        &[2000]
    } else {
        &[10_000, 50_000, 100_000]
    };
    let gate = if ctx.smoke { 0.9 } else { 0.95 };

    let mut out = format!(
        "ANN benchmark: HNSW vs exact kNN (k = {K}, dim = {DIM}, campaign-structured rows)\n\n"
    );
    let mut t = TextTable::new(vec![
        "rows",
        "backend",
        "ef",
        "build",
        "queries/s",
        "recall@10",
        "speedup",
    ]);

    let mut measured: Vec<SizePoint> = Vec::new();
    for &rows in sizes {
        let matrix = campaign_matrix(ctx, rows);

        let start = Instant::now();
        let exact = knn_all_normalized(&matrix, K, 0);
        let exact_secs = start.elapsed().as_secs_f64().max(1e-9);
        let exact_qps = rows as f64 / exact_secs;
        t.row(vec![
            rows.to_string(),
            "exact".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("{exact_qps:.0}"),
            "1.000".to_string(),
            "1.00x".to_string(),
        ]);

        let start = Instant::now();
        let index = HnswIndex::build(&matrix, &HnswConfig::default(), 0);
        let build_secs = start.elapsed().as_secs_f64();

        let mut points = Vec::new();
        for &ef in EF_SWEEP {
            let start = Instant::now();
            let approx = index.knn_all_ef(K, ef, 0);
            let secs = start.elapsed().as_secs_f64().max(1e-9);
            let qps = rows as f64 / secs;
            let recall = recall_at_k(&exact, &approx, K);
            let speedup = qps / exact_qps;
            t.row(vec![
                rows.to_string(),
                "hnsw".to_string(),
                ef.to_string(),
                format!("{build_secs:.2}s"),
                format!("{qps:.0}"),
                format!("{recall:.3}"),
                format!("{speedup:.2}x"),
            ]);
            points.push(EfPoint {
                ef,
                secs,
                qps,
                recall,
                speedup,
            });
        }
        measured.push(SizePoint {
            rows,
            exact_secs,
            exact_qps,
            build_secs,
            memory: MemoryPoint {
                f32_rows: rows * DIM * std::mem::size_of::<f32>(),
                int8_rows: QuantizedMatrix::from_normalized(&matrix).bytes(),
                graph: index.graph_bytes(),
            },
            points,
        });
    }

    // The quality gate: at every size, the widest beam must clear the
    // recall floor. Failing loudly here is the point — CI runs this in
    // smoke mode and must go red if the index regresses.
    let gate_ok = measured
        .iter()
        .all(|s| s.points.iter().map(|p| p.recall).fold(0.0f64, f64::max) >= gate);

    let dir = if ctx.smoke {
        ctx.out_dir.clone()
    } else {
        std::path::PathBuf::from(".")
    };
    let path = dir.join("BENCH_ann.json");
    write_bench(ctx, &path, &measured, gate, gate_ok);

    out.push_str(&t.render());
    out.push_str(&format!(
        "\nrecall gate: best recall@10 >= {gate} at every size: {}\n",
        if gate_ok { "PASS" } else { "FAIL" }
    ));
    out.push_str(&format!("wrote {}\n", path.display()));
    assert!(
        gate_ok,
        "ANN recall gate failed: recall@10 below {gate} (see {})",
        path.display()
    );
    out
}

/// Writes the machine-readable benchmark file.
fn write_bench(ctx: &Ctx, path: &std::path::Path, sizes: &[SizePoint], gate: f64, gate_ok: bool) {
    let size_entries: Vec<Json> = sizes
        .iter()
        .map(|s| {
            let ef_entries: Vec<Json> = s
                .points
                .iter()
                .map(|p| {
                    Json::obj()
                        .with("ef", p.ef)
                        .with("secs", p.secs)
                        .with("queries_per_sec", p.qps)
                        .with("recall_at_10", p.recall)
                        .with("speedup_vs_exact", p.speedup)
                })
                .collect();
            let m = &s.memory;
            let per_row = |total: usize| total as f64 / s.rows.max(1) as f64;
            Json::obj()
                .with("rows", s.rows)
                .with(
                    "exact",
                    Json::obj()
                        .with("secs", s.exact_secs)
                        .with("queries_per_sec", s.exact_qps),
                )
                .with(
                    "hnsw",
                    Json::obj()
                        .with("build_secs", s.build_secs)
                        .with("ef", Json::Arr(ef_entries)),
                )
                .with(
                    "memory",
                    Json::obj()
                        .with(
                            "exact",
                            Json::obj()
                                .with("total_bytes", m.f32_rows)
                                .with("bytes_per_row", per_row(m.f32_rows)),
                        )
                        .with(
                            "hnsw",
                            Json::obj()
                                .with("total_bytes", m.f32_rows + m.graph)
                                .with("bytes_per_row", per_row(m.f32_rows + m.graph))
                                .with("graph_bytes", m.graph),
                        )
                        .with(
                            "exact_int8",
                            Json::obj()
                                .with("total_bytes", m.int8_rows)
                                .with("bytes_per_row", per_row(m.int8_rows)),
                        )
                        .with(
                            "hnsw_int8",
                            Json::obj()
                                .with("total_bytes", m.int8_rows + m.graph)
                                .with("bytes_per_row", per_row(m.int8_rows + m.graph))
                                .with("graph_bytes", m.graph),
                        ),
                )
        })
        .collect();
    let json = Json::obj()
        .with("metric", "ann_knn_queries_per_sec")
        .with("smoke", ctx.smoke)
        .with("k", K)
        .with("dim", DIM)
        .with("gate_recall", gate)
        .with("gate_recall_ok", gate_ok)
        .with("sizes", Json::Arr(size_entries));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(path, json.pretty()) {
        darkvec_obs::warn!("could not write {}: {e}", path.display());
    }
}

/// A campaign-structured matrix: campaign membership comes from the
/// simulator's (cheap, deterministic) campaign construction; each row is
/// its campaign's direction vector plus Gaussian jitter. Rows beyond the
/// trace's sender count cycle through the campaigns, scaling the trace
/// up without changing its cluster structure.
pub(crate) fn campaign_matrix(ctx: &Ctx, rows: usize) -> NormalizedMatrix {
    let mut alloc = darkvec_gen::address_space::AddressAllocator::new();
    let campaigns = darkvec_gen::campaigns::build_all(&ctx.sim_cfg, &mut alloc);
    let owners: Vec<usize> = campaigns
        .iter()
        .enumerate()
        .flat_map(|(ci, c)| std::iter::repeat_n(ci, c.senders.len()))
        .collect();
    let ncamp = campaigns.len().max(1);
    let centers: Vec<Vec<f32>> = (0..ncamp)
        .map(|ci| {
            let mut rng = SmallRng::seed_from_u64(
                ctx.sim_cfg.seed ^ (ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            (0..DIM).map(|_| rng.random_range(-1.0f32..1.0)).collect()
        })
        .collect();
    let mut rng = SmallRng::seed_from_u64(ctx.sim_cfg.seed ^ 0xA77);
    let mut data = Vec::with_capacity(rows * DIM);
    for i in 0..rows {
        let ci = if owners.is_empty() {
            i % ncamp
        } else {
            owners[i % owners.len()]
        };
        for &c in &centers[ci] {
            data.push(c + 0.15 * gaussian(&mut rng));
        }
    }
    NormalizedMatrix::from_flat(data, DIM)
}

/// A standard-normal draw via Box–Muller (the vendored `rand` has no
/// normal distribution).
fn gaussian(rng: &mut SmallRng) -> f32 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_ann_runs_gates_and_writes_bench() {
        let ctx = Ctx::for_tests(98);
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
        let out = ann(&ctx);
        assert!(out.contains("recall gate"));
        assert!(out.contains("PASS"));
        let raw = std::fs::read_to_string(ctx.out_dir.join("BENCH_ann.json")).unwrap();
        assert!(raw.contains("\"gate_recall_ok\": true"), "{raw}");
        assert!(raw.contains("\"smoke\": true"));
        assert!(raw.contains("\"recall_at_10\""));
        assert!(raw.contains("\"bytes_per_row\""), "{raw}");
        assert!(raw.contains("\"exact_int8\""), "{raw}");
        let _ = std::fs::remove_dir_all(&ctx.out_dir);
    }

    #[test]
    fn campaign_matrix_is_deterministic_and_cycles() {
        let ctx = Ctx::for_tests(99);
        let a = campaign_matrix(&ctx, 500);
        let b = campaign_matrix(&ctx, 500);
        assert_eq!(a.data(), b.data());
        assert_eq!(a.rows(), 500);
        assert_eq!(a.dim(), DIM);
    }
}
