//! Sequential reference kernels — the textbook loops every other path is
//! verified against. Also the pre-SIMD performance baseline the `xp perf`
//! experiment measures speedups over.

/// Inner product, left-to-right.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha · x`, element order.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha`, element order.
pub fn scale(y: &mut [f32], alpha: f32) {
    for yi in y {
        *yi *= alpha;
    }
}

/// `y = alpha · y + x`, element order.
pub fn scale_add(y: &mut [f32], alpha: f32, x: &[f32]) {
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = alpha * *yi + xi;
    }
}

/// Quantized inner product `Σ a[i]·b[i]` in widening i32 arithmetic.
///
/// Integer addition is associative, so unlike the f32 kernels every path
/// must reproduce this result *bit-exactly* — the parity suite asserts
/// equality, not a tolerance.
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| i32::from(x) * i32::from(y))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_identities() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_i8_identities() {
        assert_eq!(dot_i8(&[], &[]), 0);
        assert_eq!(dot_i8(&[1, 2, 3], &[4, 5, 6]), 32);
        // Worst case accumulates without overflow: 127·127 per element.
        let a = [127i8; 1024];
        let b = [127i8; 1024];
        assert_eq!(dot_i8(&a, &b), 1024 * 127 * 127);
        assert_eq!(dot_i8(&[-128, -128], &[-128, 127]), 16384 - 16256);
    }

    #[test]
    fn axpy_and_scale() {
        let mut y = vec![1.0f32, 2.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 42.0]);
        scale(&mut y, 0.5);
        assert_eq!(y, vec![10.5, 21.0]);
        scale_add(&mut y, 2.0, &[1.0, 1.0]);
        assert_eq!(y, vec![22.0, 43.0]);
    }
}
