//! A time-ordered darknet packet trace and the trace-level operations
//! DarkVec needs: activity filtering (§3.1), time slicing (training vs the
//! last-day test set, §3), ΔT windowing (§5.2) and summary statistics
//! (Table 1).

use crate::ip::Ipv4;
use crate::packet::Packet;
use crate::port::{PortKey, Protocol};
use crate::stats::Counter;
use crate::time::{Timestamp, WindowIter, DAY};
use std::collections::HashSet;

/// A darknet capture: packets sorted by arrival time.
///
/// The sort invariant is established at construction and preserved by every
/// operation, so windowing and slicing are binary searches over a flat
/// vector.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    packets: Vec<Packet>,
}

impl Trace {
    /// Builds a trace, sorting packets by `(ts, src, port)` so equal-time
    /// packets have a deterministic order regardless of generation order.
    pub fn new(mut packets: Vec<Packet>) -> Self {
        packets.sort_by_key(|p| (p.ts, p.src, p.dst_port, p.proto));
        Trace { packets }
    }

    /// Builds a trace from packets already sorted by timestamp.
    ///
    /// # Panics
    /// Panics (in debug builds) if the input is not sorted.
    pub fn from_sorted(packets: Vec<Packet>) -> Self {
        debug_assert!(
            packets.windows(2).all(|w| w[0].ts <= w[1].ts),
            "packets must be sorted"
        );
        Trace { packets }
    }

    /// The packets, in arrival order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Consumes the trace, yielding its packets in arrival order.
    pub fn into_packets(self) -> Vec<Packet> {
        self.packets
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the trace holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// First and one-past-last timestamps `(t0, tf)`; `tf` is the last
    /// packet's timestamp + 1 so `[t0, tf)` covers every packet.
    /// Returns `None` for an empty trace.
    pub fn span(&self) -> Option<(Timestamp, Timestamp)> {
        let first = self.packets.first()?;
        let last = self.packets.last()?;
        Some((first.ts, last.ts + 1))
    }

    /// Number of capture days spanned (day index of the last packet + 1).
    pub fn days(&self) -> u64 {
        self.packets.last().map(|p| p.ts.day() + 1).unwrap_or(0)
    }

    /// The set of distinct sender addresses.
    pub fn senders(&self) -> HashSet<Ipv4> {
        self.packets.iter().map(|p| p.src).collect()
    }

    /// Packets sent by each sender.
    pub fn packets_per_sender(&self) -> Counter<Ipv4> {
        self.packets.iter().map(|p| p.src).collect()
    }

    /// Packets received by each (port, protocol) service key.
    pub fn port_counter(&self) -> Counter<PortKey> {
        self.packets.iter().map(|p| p.port_key()).collect()
    }

    /// Distinct senders observed per (port, protocol) — Table 1's
    /// "Sources" column for top ports.
    pub fn sources_per_port(&self, key: PortKey) -> usize {
        self.packets
            .iter()
            .filter(|p| p.port_key() == key)
            .map(|p| p.src)
            .collect::<HashSet<_>>()
            .len()
    }

    /// The *active* senders: those sending at least `min_packets` packets
    /// in this trace. The paper filters at 10 packets/month (§3.1).
    pub fn active_senders(&self, min_packets: u64) -> HashSet<Ipv4> {
        self.packets_per_sender()
            .iter()
            .filter(|&(_, c)| c >= min_packets)
            .map(|(ip, _)| *ip)
            .collect()
    }

    /// A new trace retaining only packets from the given senders.
    pub fn retain_senders(&self, keep: &HashSet<Ipv4>) -> Trace {
        Trace::from_sorted(
            self.packets
                .iter()
                .filter(|p| keep.contains(&p.src))
                .copied()
                .collect(),
        )
    }

    /// A new trace retaining only packets whose sender is active
    /// (≥ `min_packets` packets in this trace).
    pub fn filter_active(&self, min_packets: u64) -> Trace {
        self.retain_senders(&self.active_senders(min_packets))
    }

    /// The sub-trace with `t0 ≤ ts < tf` (zero-copy bounds, copied packets).
    pub fn slice_time(&self, t0: Timestamp, tf: Timestamp) -> Trace {
        Trace::from_sorted(self.slice(t0, tf).to_vec())
    }

    /// The packets with `t0 ≤ ts < tf`, as a borrowed slice.
    pub fn slice(&self, t0: Timestamp, tf: Timestamp) -> &[Packet] {
        let lo = self.packets.partition_point(|p| p.ts < t0);
        let hi = self.packets.partition_point(|p| p.ts < tf);
        &self.packets[lo..hi.max(lo)]
    }

    /// The first `days` full days of the trace.
    pub fn first_days(&self, days: u64) -> Trace {
        self.slice_time(Timestamp::ZERO, Timestamp(days * DAY))
    }

    /// The packets of day `day` (zero-based).
    pub fn day_slice(&self, day: u64) -> &[Packet] {
        self.slice(Timestamp(day * DAY), Timestamp((day + 1) * DAY))
    }

    /// The last full-or-partial day of the trace — the paper's test set
    /// (§3: "we separate the last day of our collection as a testing set").
    pub fn last_day(&self) -> Trace {
        if self.is_empty() {
            return Trace::default();
        }
        let last = self.days() - 1;
        Trace::from_sorted(self.day_slice(last).to_vec())
    }

    /// Iterates over non-overlapping ΔT windows covering the trace span,
    /// yielding `(window_start, packets_in_window)`.
    pub fn windows(&self, dt: u64) -> impl Iterator<Item = (Timestamp, &[Packet])> {
        let (t0, tf) = self.span().unwrap_or((Timestamp::ZERO, Timestamp::ZERO));
        // Align window boundaries to multiples of dt (like wall-clock hours)
        // rather than to the first packet, so ΔT windows are stable across
        // sub-slices of the same capture.
        let aligned = Timestamp(t0.0 / dt * dt);
        WindowIter::new(aligned, tf, dt).map(move |(ws, we)| (ws, self.slice(ws, we)))
    }

    /// Cumulative number of distinct senders after each day — Figure 2b.
    /// Entry `d` is the count over days `0..=d`.
    pub fn cumulative_senders_per_day(&self) -> Vec<usize> {
        let mut seen: HashSet<Ipv4> = HashSet::new();
        let mut out = Vec::new();
        for day in 0..self.days() {
            for p in self.day_slice(day) {
                seen.insert(p.src);
            }
            out.push(seen.len());
        }
        out
    }

    /// Summary statistics (Table 1).
    pub fn stats(&self) -> TraceStats {
        let ports = self.port_counter();
        let tcp_ports: Counter<u16> = self
            .packets
            .iter()
            .filter(|p| p.proto == Protocol::Tcp)
            .map(|p| p.dst_port)
            .collect();
        let top_tcp = tcp_ports
            .top(3)
            .into_iter()
            .map(|(port, pkts)| TopPort {
                port,
                traffic_pct: 100.0 * pkts as f64 / self.len().max(1) as f64,
                sources: self.sources_per_port(PortKey::tcp(port)),
            })
            .collect();
        TraceStats {
            days: self.days(),
            sources: self.senders().len(),
            packets: self.len(),
            ports: ports.distinct(),
            top_tcp,
        }
    }

    /// Merges two traces into a new sorted trace.
    pub fn merge(&self, other: &Trace) -> Trace {
        let mut all = Vec::with_capacity(self.len() + other.len());
        all.extend_from_slice(&self.packets);
        all.extend_from_slice(&other.packets);
        Trace::new(all)
    }
}

/// One row of Table 1's "Top-3 TCP ports" block.
#[derive(Clone, Debug, PartialEq)]
pub struct TopPort {
    /// TCP destination port.
    pub port: u16,
    /// Percentage of *all* trace packets targeting it.
    pub traffic_pct: f64,
    /// Distinct senders targeting it.
    pub sources: usize,
}

/// Dataset summary, one per Table 1 row group.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Capture length in days.
    pub days: u64,
    /// Distinct source addresses.
    pub sources: usize,
    /// Total packets.
    pub packets: usize,
    /// Distinct (port, protocol) keys targeted.
    pub ports: usize,
    /// The three busiest TCP ports.
    pub top_tcp: Vec<TopPort>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::HOUR;

    fn ip(d: u8) -> Ipv4 {
        Ipv4::new(10, 0, 0, d)
    }

    fn pkt(ts: u64, src: u8, port: u16) -> Packet {
        Packet::new(Timestamp(ts), ip(src), port, Protocol::Tcp)
    }

    fn sample() -> Trace {
        Trace::new(vec![
            pkt(50, 1, 23),
            pkt(10, 2, 445),
            pkt(5, 1, 23),
            pkt(DAY + 3, 3, 23),
            pkt(DAY + 9, 1, 80),
        ])
    }

    #[test]
    fn construction_sorts() {
        let t = sample();
        let ts: Vec<u64> = t.packets().iter().map(|p| p.ts.0).collect();
        assert_eq!(ts, vec![5, 10, 50, DAY + 3, DAY + 9]);
    }

    #[test]
    fn construction_breaks_time_ties_deterministically() {
        let a = Trace::new(vec![pkt(7, 2, 23), pkt(7, 1, 23)]);
        let b = Trace::new(vec![pkt(7, 1, 23), pkt(7, 2, 23)]);
        assert_eq!(a, b);
    }

    #[test]
    fn span_and_days() {
        let t = sample();
        assert_eq!(t.span(), Some((Timestamp(5), Timestamp(DAY + 10))));
        assert_eq!(t.days(), 2);
        assert_eq!(Trace::default().span(), None);
        assert_eq!(Trace::default().days(), 0);
    }

    #[test]
    fn sender_counting() {
        let t = sample();
        assert_eq!(t.senders().len(), 3);
        assert_eq!(t.packets_per_sender().get(&ip(1)), 3);
    }

    #[test]
    fn active_filter_keeps_heavy_senders_only() {
        let t = sample();
        let active = t.active_senders(2);
        assert_eq!(active.len(), 1);
        assert!(active.contains(&ip(1)));
        let filtered = t.filter_active(2);
        assert_eq!(filtered.len(), 3);
        assert!(filtered.packets().iter().all(|p| p.src == ip(1)));
    }

    #[test]
    fn slice_time_is_half_open() {
        let t = sample();
        assert_eq!(t.slice_time(Timestamp(5), Timestamp(50)).len(), 2);
        assert_eq!(t.slice_time(Timestamp(5), Timestamp(51)).len(), 3);
        assert_eq!(t.slice_time(Timestamp(1000), Timestamp(100)).len(), 0);
    }

    #[test]
    fn first_days_and_last_day() {
        let t = sample();
        assert_eq!(t.first_days(1).len(), 3);
        let last = t.last_day();
        assert_eq!(last.len(), 2);
        assert!(last.packets().iter().all(|p| p.ts.day() == 1));
        assert!(Trace::default().last_day().is_empty());
    }

    #[test]
    fn windows_partition_the_trace() {
        let t = sample();
        let total: usize = t.windows(HOUR).map(|(_, w)| w.len()).sum();
        assert_eq!(total, t.len());
        // First window starts at an aligned boundary.
        let (start, _) = t.windows(HOUR).next().unwrap();
        assert_eq!(start.0 % HOUR, 0);
    }

    #[test]
    fn cumulative_senders_grow_monotonically() {
        let t = sample();
        let cum = t.cumulative_senders_per_day();
        assert_eq!(cum, vec![2, 3]);
    }

    #[test]
    fn stats_top_ports() {
        let t = sample();
        let s = t.stats();
        assert_eq!(s.sources, 3);
        assert_eq!(s.packets, 5);
        assert_eq!(s.ports, 3);
        assert_eq!(s.top_tcp[0].port, 23);
        assert_eq!(s.top_tcp[0].sources, 2);
        assert!((s.top_tcp[0].traffic_pct - 60.0).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_order_and_size() {
        let t = sample();
        let u = Trace::new(vec![pkt(7, 9, 22)]);
        let m = t.merge(&u);
        assert_eq!(m.len(), 6);
        assert!(m.packets().windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn sources_per_port_counts_distinct() {
        let t = sample();
        assert_eq!(t.sources_per_port(PortKey::tcp(23)), 2);
        assert_eq!(t.sources_per_port(PortKey::tcp(80)), 1);
        assert_eq!(t.sources_per_port(PortKey::udp(23)), 0);
    }
}
