//! Benchmarks for the analysis stages: brute-force kNN, k′-NN graph
//! construction, Louvain community detection and silhouette scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use darkvec_graph::knn_graph::{build_knn_graph, KnnGraphConfig};
use darkvec_graph::louvain::louvain;
use darkvec_graph::silhouette::cluster_silhouettes;
use darkvec_ml::knn::knn_all;
use darkvec_ml::vectors::Matrix;
use std::hint::black_box;

/// A synthetic embedding: `groups` unit-norm clusters of `per_group`
/// 50-d points with small deterministic jitter.
fn synthetic_embedding(groups: usize, per_group: usize, dim: usize) -> Vec<f32> {
    let n = groups * per_group;
    let mut data = vec![0.0f32; n * dim];
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 24) as f32
    };
    for g in 0..groups {
        for i in 0..per_group {
            let row = g * per_group + i;
            // Cluster axis + jitter.
            data[row * dim + (g % dim)] = 1.0;
            for d in 0..dim {
                data[row * dim + d] += 0.05 * next();
            }
        }
    }
    data
}

fn bench_knn(c: &mut Criterion) {
    let dim = 50;
    let data = synthetic_embedding(20, 60, dim);
    let n = data.len() / dim;
    let m = Matrix::new(&data, n, dim);
    let mut g = c.benchmark_group("ml/knn_all");
    g.sample_size(10);
    g.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("k7/threads", threads),
            &threads,
            |b, &t| b.iter(|| knn_all(black_box(m), 7, t)),
        );
    }
    g.finish();
}

fn bench_knn_graph(c: &mut Criterion) {
    let dim = 50;
    let data = synthetic_embedding(20, 60, dim);
    let m = Matrix::new(&data, data.len() / dim, dim);
    c.bench_function("graph/build_knn_k3", |b| {
        b.iter(|| {
            build_knn_graph(
                black_box(m),
                &KnnGraphConfig {
                    k: 3,
                    threads: 4,
                    mutual: false,
                    ..Default::default()
                },
            )
        })
    });
}

fn bench_louvain(c: &mut Criterion) {
    let dim = 50;
    let data = synthetic_embedding(20, 60, dim);
    let m = Matrix::new(&data, data.len() / dim, dim);
    let graph = build_knn_graph(
        m,
        &KnnGraphConfig {
            k: 3,
            threads: 4,
            mutual: false,
            ..Default::default()
        },
    );
    c.bench_function("graph/louvain_1200n", |b| {
        b.iter(|| louvain(black_box(&graph), 1))
    });
}

fn bench_silhouette(c: &mut Criterion) {
    let dim = 50;
    let data = synthetic_embedding(20, 60, dim);
    let n = data.len() / dim;
    let m = Matrix::new(&data, n, dim);
    let assignment: Vec<u32> = (0..n).map(|i| (i / 100) as u32).collect();
    let mut g = c.benchmark_group("graph/silhouette");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("1200x50", |b| {
        b.iter(|| cluster_silhouettes(black_box(m), &assignment))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_knn,
    bench_knn_graph,
    bench_louvain,
    bench_silhouette
);
criterion_main!(benches);
