//! Coordinated scanners the paper's ground truth does *not* know about —
//! the groups DarkVec's unsupervised analysis discovers in §7.3:
//! Shadowserver (three sub-groups in one /16) and the unknown1/2/3/7/8
//! scan campaigns. All are GT-Unknown; their campaign ids are the hidden
//! truth the clustering should rediscover.

use super::{Campaign, SenderSpec};
use crate::address_space::AddressAllocator;
use crate::config::SimConfig;
use crate::mix::PortMix;
use crate::schedule::{periodic_times, Schedule};
use crate::truth::CampaignId;
use darkvec_types::{Ipv4, PortKey, Subnet, DAY, HOUR, MINUTE};
use rand::rngs::StdRng;
use rand::RngExt;
use std::sync::Arc;

/// Builds all unknown-scanner campaigns.
pub fn build(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Vec<Campaign> {
    let mut out = shadowserver(cfg, alloc, rng);
    out.push(u1_netbios(cfg, alloc, rng));
    out.push(u2_smtp(cfg, alloc, rng));
    out.push(u3_smb(cfg, alloc, rng));
    out.push(u7_horizontal(cfg, alloc, rng));
    out.push(u8_horizontal(cfg, alloc, rng));
    out
}

/// Shadowserver (§7.3.2): 113 senders in the same /16, split into three
/// sub-groups (61/36/16) that target the *same* port pool "but with very
/// different intensity": C25 favours 623/123 udp, C29 5683/3389, C37
/// 111/137. Temporal patterns are "less evident" than Censys — looser
/// jitter, no staggering.
fn shadowserver(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Vec<Campaign> {
    let net16 = Ipv4::new(184, 105, 0, 0).slash16();
    let horizon = cfg.horizon();
    // (size, heavy ports with shares) per sub-group, from §7.3.2.
    let groups: [(usize, Vec<(PortKey, f64)>); 3] = [
        (
            61,
            vec![(PortKey::udp(623), 10.0), (PortKey::udp(123), 10.0)],
        ),
        (
            36,
            vec![(PortKey::udp(5683), 12.5), (PortKey::udp(3389), 12.5)],
        ),
        (
            16,
            vec![(PortKey::udp(111), 31.5), (PortKey::udp(137), 31.5)],
        ),
    ];
    // The shared scan pool: every group also touches the others' ports plus
    // a common tail, so the groups differ by intensity, not by set.
    let shared_pool: Vec<PortKey> = vec![
        PortKey::udp(623),
        PortKey::udp(123),
        PortKey::udp(5683),
        PortKey::udp(3389),
        PortKey::udp(111),
        PortKey::udp(137),
        PortKey::udp(17),
        PortKey::udp(19),
        PortKey::udp(53),
        PortKey::udp(161),
        PortKey::udp(389),
        PortKey::udp(1900),
    ];
    let mut out = Vec::new();
    for (g, (size, heavy)) in groups.into_iter().enumerate() {
        let heavy_share: f64 = heavy.iter().map(|&(_, w)| w).sum();
        let mut entries = heavy.clone();
        let rest = 100.0 - heavy_share;
        let fillers: Vec<PortKey> = shared_pool
            .iter()
            .copied()
            .filter(|k| !heavy.iter().any(|&(h, _)| h == *k))
            .collect();
        let w = rest / fillers.len() as f64;
        entries.extend(fillers.into_iter().map(|k| (k, w)));
        let mix = Arc::new(PortMix::new(entries));
        let subnet = Subnet::new(Ipv4(net16.base.0 + ((g as u32 + 1) << 8)), 24);
        let ips = alloc.from_subnet(subnet, size);
        let times = periodic_times(rng.random_range(0..3 * HOUR), 3 * HOUR, horizon);
        let pkts_hi = ((4.0 * cfg.rate_scale).round() as u32).max(2);
        let senders = ips
            .into_iter()
            .map(|ip| SenderSpec {
                ip,
                window: (0, horizon),
                schedule: Schedule::Rounds {
                    times: times.clone(),
                    jitter: 80 * MINUTE,
                    pkts_per_round: (1, pkts_hi),
                },
                mix: mix.clone(),
                mirai_fingerprint: false,
            })
            .collect();
        out.push(Campaign {
            id: CampaignId::Shadowserver(g as u8),
            published_as: None,
            senders,
        });
    }
    out
}

/// unknown1 — 85 senders from one /24 in the Cogent range; 60 % of
/// traffic to NetBIOS 137/udp "with a very regular pattern" (Figure 14).
fn u1_netbios(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let ips = alloc.from_subnet(Ipv4::new(38, 77, 146, 0).slash24(), 85);
    let mix = Arc::new(PortMix::with_tail(
        vec![(PortKey::udp(137), 60.0)],
        17,
        0.40,
        rng,
    ));
    regular_campaign(
        cfg,
        CampaignId::U1NetBios,
        ips,
        mix,
        HOUR,
        2 * MINUTE,
        (1, 2),
        rng,
    )
}

/// unknown2 — 10 senders from one /24 in cloud address space; 76 % of
/// traffic to SMTP 25/tcp.
fn u2_smtp(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let ips = alloc.from_subnet(Ipv4::new(34, 86, 102, 0).slash24(), 10);
    let mix = Arc::new(PortMix::with_tail(
        vec![(PortKey::tcp(25), 76.0)],
        11,
        0.24,
        rng,
    ));
    regular_campaign(
        cfg,
        CampaignId::U2Smtp,
        ips,
        mix,
        2 * HOUR,
        5 * MINUTE,
        (2, 4),
        rng,
    )
}

/// unknown3 — 61 senders scattered into 23 /24 subnets, 99.5 % of traffic
/// to SMB 445/tcp with a very regular temporal pattern.
fn u3_smb(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let nets: Vec<Subnet> = (0..23)
        .map(|i| Ipv4::new(91, 148 + (i / 8) as u8, 37 + (i % 8) as u8 * 13, 0).slash24())
        .collect();
    let ips = alloc.scattered(&nets, 61);
    let mix = Arc::new(PortMix::new(vec![
        (PortKey::tcp(445), 99.5),
        (PortKey::tcp(139), 0.2),
        (PortKey::tcp(135), 0.2),
        (PortKey::udp(137), 0.1),
    ]));
    regular_campaign(
        cfg,
        CampaignId::U3Smb,
        ips,
        mix,
        HOUR,
        3 * MINUTE,
        (1, 3),
        rng,
    )
}

/// unknown7 — 158 senders scanning 148 ports with an almost equal share,
/// "a very regular daily pattern, hinting to a botnet performing
/// horizontal scans".
fn u7_horizontal(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let n = 158.min((Subnet::new(Ipv4::new(45, 143, 200, 0), 24)).size() as usize * 4);
    let nets: Vec<Subnet> = (0..4)
        .map(|i| Ipv4::new(45, 143, 200 + i, 0).slash24())
        .collect();
    let ips = alloc.scattered(&nets, n);
    let ports: Vec<PortKey> = distinct_ports(148, rng);
    let mix = Arc::new(PortMix::uniform(ports));
    let pkts_hi = ((20.0 * cfg.rate_scale).round() as u32).max(2);
    regular_campaign(
        cfg,
        CampaignId::U7Horizontal,
        ips,
        mix,
        DAY,
        2 * HOUR,
        (pkts_hi / 2, pkts_hi),
        rng,
    )
}

/// unknown8 — 22 senders scanning 69 ports with an almost equal share
/// (port Jaccard 0.82 between members) and a very regular hourly pattern.
fn u8_horizontal(cfg: &SimConfig, alloc: &mut AddressAllocator, rng: &mut StdRng) -> Campaign {
    let ips = alloc.from_subnet(Ipv4::new(176, 113, 115, 0).slash24(), 22);
    let ports: Vec<PortKey> = distinct_ports(69, rng);
    let mix = Arc::new(PortMix::uniform(ports));
    regular_campaign(
        cfg,
        CampaignId::U8Horizontal,
        ips,
        mix,
        HOUR,
        5 * MINUTE,
        (1, 3),
        rng,
    )
}

/// `n` distinct pseudo-random user-range TCP ports.
fn distinct_ports(n: usize, rng: &mut StdRng) -> Vec<PortKey> {
    let mut set = std::collections::HashSet::new();
    while set.len() < n {
        set.insert(PortKey::tcp(rng.random_range(1024..49151)));
    }
    let mut v: Vec<PortKey> = set.into_iter().collect();
    v.sort();
    v
}

/// A full-horizon campaign with tightly periodic rounds — the "very
/// regular pattern" signature of unknown1/2/3/8.
#[allow(clippy::too_many_arguments)]
fn regular_campaign(
    cfg: &SimConfig,
    id: CampaignId,
    ips: Vec<Ipv4>,
    mix: Arc<PortMix>,
    period: u64,
    jitter: u64,
    pkts_per_round: (u32, u32),
    rng: &mut StdRng,
) -> Campaign {
    let horizon = cfg.horizon();
    let times = periodic_times(rng.random_range(0..period), period, horizon);
    let pkts = (
        ((pkts_per_round.0 as f64 * cfg.rate_scale).round() as u32).max(1),
        ((pkts_per_round.1 as f64 * cfg.rate_scale).round() as u32).max(1),
    );
    let pkts = (pkts.0.min(pkts.1), pkts.1.max(pkts.0));
    let senders = ips
        .into_iter()
        .map(|ip| SenderSpec {
            ip,
            window: (0, horizon),
            schedule: Schedule::Rounds {
                times: times.clone(),
                jitter,
                pkts_per_round: pkts,
            },
            mix: mix.clone(),
            mirai_fingerprint: false,
        })
        .collect();
    Campaign {
        id,
        published_as: None,
        senders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn built() -> Vec<Campaign> {
        let cfg = SimConfig::tiny(4);
        build(
            &cfg,
            &mut AddressAllocator::new(),
            &mut StdRng::seed_from_u64(4),
        )
    }

    fn find(campaigns: &[Campaign], id: CampaignId) -> &Campaign {
        campaigns.iter().find(|c| c.id == id).unwrap()
    }

    #[test]
    fn shadowserver_sits_in_one_slash16() {
        let c = built();
        let mut sizes = Vec::new();
        let mut nets16 = std::collections::HashSet::new();
        for g in 0..3u8 {
            let camp = find(&c, CampaignId::Shadowserver(g));
            sizes.push(camp.len());
            for s in &camp.senders {
                nets16.insert(s.ip.slash16());
            }
        }
        assert_eq!(sizes, vec![61, 36, 16]);
        assert_eq!(nets16.len(), 1, "all shadowserver groups share a /16");
    }

    #[test]
    fn shadowserver_groups_share_ports_differ_in_intensity() {
        let c = built();
        let m0 = &find(&c, CampaignId::Shadowserver(0)).senders[0].mix;
        let m2 = &find(&c, CampaignId::Shadowserver(2)).senders[0].mix;
        // Same pool...
        let k0: std::collections::HashSet<_> = m0.keys().iter().collect();
        let k2: std::collections::HashSet<_> = m2.keys().iter().collect();
        assert_eq!(k0, k2);
        // ...different emphasis.
        assert!(m0.weight(PortKey::udp(623)) > 2.0 * m2.weight(PortKey::udp(623)));
        assert!(m2.weight(PortKey::udp(111)) > 2.0 * m0.weight(PortKey::udp(111)));
    }

    #[test]
    fn u1_is_one_slash24_netbios() {
        let c = built();
        let u1 = find(&c, CampaignId::U1NetBios);
        assert_eq!(u1.len(), 85);
        let nets: std::collections::HashSet<_> =
            u1.senders.iter().map(|s| s.ip.slash24()).collect();
        assert_eq!(nets.len(), 1);
        assert!(u1.senders[0].mix.weight(PortKey::udp(137)) > 0.5);
    }

    #[test]
    fn u3_scatters_over_23_slash24s() {
        let c = built();
        let u3 = find(&c, CampaignId::U3Smb);
        assert_eq!(u3.len(), 61);
        let nets: std::collections::HashSet<_> =
            u3.senders.iter().map(|s| s.ip.slash24()).collect();
        assert_eq!(nets.len(), 23);
        assert!(u3.senders[0].mix.weight(PortKey::tcp(445)) > 0.99);
    }

    #[test]
    fn horizontal_scanners_have_uniform_mixes() {
        let c = built();
        let u7 = find(&c, CampaignId::U7Horizontal);
        let u8c = find(&c, CampaignId::U8Horizontal);
        assert_eq!(u7.senders[0].mix.keys().len(), 148);
        assert_eq!(u8c.senders[0].mix.keys().len(), 69);
        assert_eq!(u8c.len(), 22);
        // Equal share: every port's weight is ~1/n.
        let w = u8c.senders[0].mix.weight(u8c.senders[0].mix.keys()[0]);
        assert!((w - 1.0 / 69.0).abs() < 1e-9);
    }

    #[test]
    fn all_unknowns_are_gt_unknown() {
        for c in built() {
            assert_eq!(c.published_as, None, "{} must stay off scanner lists", c.id);
            assert!(c.senders.iter().all(|s| !s.mirai_fingerprint));
        }
    }
}
