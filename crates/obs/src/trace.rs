//! Chrome `trace_event` export.
//!
//! Converts a schema-v2 run manifest (see [`crate::manifest`]) into the
//! Chrome Trace Event JSON format, openable in `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev). Emitted events:
//!
//! * `ph: "M"` metadata — `process_name` (the command) and one
//!   `thread_name` per recorded thread, so Hogwild workers, HNSW build
//!   threads, and the main thread appear as labelled lanes;
//! * `ph: "X"` complete events — one per raw span occurrence, with
//!   microsecond `ts`/`dur` on the span's real thread;
//! * `ph: "C"` counter events — one per metric per counter sample,
//!   rendered by the viewers as stacked counter tracks.
//!
//! Timestamps are offsets from the process-wide span epoch, so lanes
//! from different threads align.

use crate::json::Json;

/// Converts a parsed run manifest into a Chrome trace document.
///
/// Fails on manifests that predate schema v2 (no `trace_events`
/// section) with an actionable message.
pub fn chrome_trace(manifest: &Json) -> Result<Json, String> {
    let events = manifest
        .get("trace_events")
        .and_then(Json::as_arr)
        .ok_or_else(|| {
            "manifest has no trace_events section (written by a pre-v2 obs layer?); \
             re-run the command with the current binary to regenerate it"
                .to_string()
        })?;
    let pid = manifest.get("pid").and_then(Json::as_u64).unwrap_or(1);
    let command = manifest
        .get("command")
        .and_then(Json::as_str)
        .unwrap_or("darkvec");

    let mut out: Vec<Json> = Vec::new();
    out.push(
        Json::obj()
            .with("name", "process_name")
            .with("ph", "M")
            .with("pid", pid)
            .with("args", Json::obj().with("name", command)),
    );
    if let Some(names) = manifest.get("thread_names").and_then(Json::as_obj) {
        for (tid, name) in names {
            let tid: u64 = tid
                .parse()
                .map_err(|_| format!("thread_names key '{tid}' is not a thread id"))?;
            out.push(
                Json::obj()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", pid)
                    .with("tid", tid)
                    .with(
                        "args",
                        Json::obj().with("name", name.as_str().unwrap_or("thread")),
                    ),
            );
        }
    }

    for (i, event) in events.iter().enumerate() {
        let get_u64 = |key: &str| {
            event
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("trace event {i} is missing numeric '{key}'"))
        };
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace event {i} is missing 'name'"))?;
        out.push(
            Json::obj()
                .with("name", name)
                .with("cat", "span")
                .with("ph", "X")
                .with("ts", get_u64("ts_us")?)
                .with("dur", get_u64("dur_us")?)
                .with("pid", pid)
                .with("tid", get_u64("tid")?),
        );
    }

    // Counter samples become one counter event per metric per sample;
    // viewers plot each metric name as its own track. Counters and
    // gauges share the namespace (manifest metric names are disjoint).
    if let Some(samples) = manifest.get("counter_samples").and_then(Json::as_arr) {
        for sample in samples {
            let Some(ts) = sample.get("ts_us").and_then(Json::as_u64) else {
                continue;
            };
            for section in ["counters", "gauges"] {
                let Some(entries) = sample.get(section).and_then(Json::as_obj) else {
                    continue;
                };
                for (name, value) in entries {
                    let Some(value) = value.as_f64() else {
                        continue;
                    };
                    out.push(
                        Json::obj()
                            .with("name", name.as_str())
                            .with("ph", "C")
                            .with("ts", ts)
                            .with("pid", pid)
                            .with("args", Json::obj().with("value", value)),
                    );
                }
            }
        }
    }

    Ok(Json::obj()
        .with("traceEvents", Json::Arr(out))
        .with("displayTimeUnit", "ms"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, span, ManifestBuilder};

    fn fixture_manifest() -> Json {
        {
            let _g = span::enter("test_trace_fixture_span");
            let _c = span::enter("test_trace_fixture_child");
        }
        metrics::counter("test.trace_fixture").add(3);
        metrics::record_sample();
        ManifestBuilder::new("trace-fixture").finish()
    }

    #[test]
    fn exports_well_formed_chrome_trace() {
        let manifest = fixture_manifest();
        let trace = chrome_trace(&manifest).expect("export");
        // Top-level schema.
        assert_eq!(
            trace.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let events = trace
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        // Every event carries the Perfetto-required fields for its phase.
        for event in events {
            let ph = event.get("ph").and_then(Json::as_str).expect("ph");
            assert!(event.get("name").and_then(Json::as_str).is_some());
            assert!(event.get("pid").and_then(Json::as_u64).is_some());
            match ph {
                "X" => {
                    assert!(event.get("ts").and_then(Json::as_u64).is_some());
                    assert!(event.get("dur").and_then(Json::as_u64).is_some());
                    assert!(event.get("tid").and_then(Json::as_u64).is_some());
                    assert_eq!(event.get("cat").and_then(Json::as_str), Some("span"));
                }
                "C" => {
                    assert!(event.get("ts").and_then(Json::as_u64).is_some());
                    assert!(event
                        .get("args")
                        .and_then(|a| a.get("value"))
                        .and_then(Json::as_f64)
                        .is_some());
                }
                "M" => {
                    assert!(event.get("args").and_then(|a| a.get("name")).is_some());
                }
                other => panic!("unexpected phase {other}"),
            }
        }

        // Metadata names the process after the command.
        let process = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
            .expect("process_name metadata");
        assert_eq!(
            process
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("trace-fixture")
        );

        // Our spans made it through as complete events.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("test_trace_fixture_span")));

        // The counter sample produced a counter event.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("C")
                && e.get("name").and_then(Json::as_str) == Some("test.trace_fixture")
        }));

        // The whole document round-trips through the parser.
        let text = trace.pretty();
        assert_eq!(Json::parse(&text).expect("reparse"), trace);
    }

    #[test]
    fn thread_metadata_covers_event_tids() {
        let manifest = fixture_manifest();
        let trace = chrome_trace(&manifest).unwrap();
        let events = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
        let named_tids: Vec<u64> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| e.get("tid").and_then(Json::as_u64))
            .collect();
        for event in events {
            if event.get("ph").and_then(Json::as_str) == Some("X") {
                let tid = event.get("tid").and_then(Json::as_u64).unwrap();
                assert!(named_tids.contains(&tid), "tid {tid} has a thread_name");
            }
        }
    }

    #[test]
    fn rejects_pre_v2_manifests() {
        let old = Json::obj().with("command", "x").with("pid", 1u64);
        let err = chrome_trace(&old).unwrap_err();
        assert!(err.contains("trace_events"), "actionable error: {err}");
    }
}
