//! Unsupervised analysis (§7): cluster the embedded senders with a k′-NN
//! graph and Louvain community detection, then score cluster quality with
//! silhouettes.

use darkvec_graph::components::connected_components;
use darkvec_graph::knn_graph::{build_knn_graph_normalized, KnnGraphConfig};
use darkvec_graph::louvain::louvain;
use darkvec_graph::silhouette::cluster_silhouettes_normalized;
use darkvec_ml::ann::NeighborBackend;
use darkvec_ml::vectors::Matrix;
use darkvec_types::Ipv4;
use darkvec_w2v::Embedding;
use std::collections::HashMap;

/// Configuration for the unsupervised clustering.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Out-degree k′ of the sender graph (the paper's elbow pick is 3).
    pub k: usize,
    /// Louvain tie-breaking seed.
    pub seed: u64,
    /// Threads for kNN (0 = all cores).
    pub threads: usize,
    /// Neighbour-search backend for the graph build (default exact; HNSW
    /// for traces past the O(n²) wall).
    pub backend: NeighborBackend,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k: 3,
            seed: 1,
            threads: 0,
            backend: NeighborBackend::Exact,
        }
    }
}

/// The result of clustering an embedding.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Cluster id per vocab row. Ids are canonical: clusters are numbered
    /// by their smallest member address (descending size as tie-break), so
    /// the same partition always gets the same ids regardless of Louvain's
    /// discovery order — see [`canonical_assignment`].
    pub assignment: Vec<u32>,
    /// Number of clusters.
    pub clusters: usize,
    /// Modularity of the partition on the k′-NN graph.
    pub modularity: f64,
    /// Mean silhouette per cluster, under cosine distance in the
    /// embedding space (Figure 11).
    pub silhouettes: Vec<f64>,
}

impl Clustering {
    /// Cluster id of a sender, given the embedding used for clustering.
    pub fn cluster_of(&self, embedding: &Embedding<Ipv4>, ip: &Ipv4) -> Option<u32> {
        embedding
            .vocab()
            .id(ip)
            .map(|id| self.assignment[id as usize])
    }

    /// Members of each cluster as sender addresses.
    pub fn members(&self, embedding: &Embedding<Ipv4>) -> Vec<Vec<Ipv4>> {
        let mut out = vec![Vec::new(); self.clusters];
        for (row, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(*embedding.vocab().word(row as u32));
        }
        out
    }

    /// Cluster sizes, indexed by cluster id.
    pub fn sizes(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.clusters];
        for &c in &self.assignment {
            out[c as usize] += 1;
        }
        out
    }

    /// `(cluster id, mean silhouette)` sorted by decreasing silhouette —
    /// Figure 11's x-axis order.
    pub fn silhouette_ranking(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> = self
            .silhouettes
            .iter()
            .enumerate()
            .map(|(c, &s)| (c as u32, s))
            .collect();
        // A NaN silhouette (degenerate cluster) must not freeze wherever
        // the input order left it, nor outrank finite scores; rank it
        // below every finite value, ties broken by cluster id.
        let rank = |x: f64| if x.is_nan() { f64::NEG_INFINITY } else { x };
        v.sort_by(|a, b| rank(b.1).total_cmp(&rank(a.1)).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// Clusters an embedding: k′-NN graph → Louvain → silhouettes.
///
/// # Panics
/// Panics if the embedding is empty.
pub fn cluster_embedding(embedding: &Embedding<Ipv4>, cfg: &ClusterConfig) -> Clustering {
    assert!(!embedding.is_empty(), "cannot cluster an empty embedding");
    // One normalised copy feeds both the graph build and the silhouettes.
    let normed = Matrix::new(embedding.vectors(), embedding.len(), embedding.dim()).normalized();
    let graph = build_knn_graph_normalized(
        &normed,
        &KnnGraphConfig {
            k: cfg.k,
            threads: cfg.threads,
            mutual: false,
            backend: cfg.backend.clone(),
        },
    );
    let partition = louvain(&graph, cfg.seed);
    let assignment = canonical_assignment(embedding, &partition.assignment, partition.communities);
    let silhouettes = cluster_silhouettes_normalized(&normed, &assignment);
    Clustering {
        assignment,
        clusters: partition.communities,
        modularity: partition.modularity,
        silhouettes,
    }
}

/// Renumbers a partition into canonical cluster ids: clusters are ordered
/// by their smallest member address, with descending size as tie-break.
///
/// Louvain assigns community ids in discovery order, which depends on the
/// seed and graph traversal — the "same" cluster would get a different id
/// every window or rerun, which is useless as a lineage key and confusing
/// in incremental output. The canonical order depends only on the
/// partition itself (cluster members are disjoint, so the smallest member
/// is a unique anchor), making ids stable across reruns, thread counts,
/// and sliding windows as long as the membership is stable.
pub fn canonical_assignment(
    embedding: &Embedding<Ipv4>,
    assignment: &[u32],
    clusters: usize,
) -> Vec<u32> {
    let mut min_ip: Vec<Option<Ipv4>> = vec![None; clusters];
    let mut size = vec![0usize; clusters];
    for (row, &c) in assignment.iter().enumerate() {
        let ip = *embedding.vocab().word(row as u32);
        let slot = &mut min_ip[c as usize];
        if slot.map(|m| ip < m).unwrap_or(true) {
            *slot = Some(ip);
        }
        size[c as usize] += 1;
    }
    let mut order: Vec<u32> = (0..clusters as u32).collect();
    order.sort_by(|&a, &b| {
        min_ip[a as usize]
            .cmp(&min_ip[b as usize])
            .then_with(|| size[b as usize].cmp(&size[a as usize]))
    });
    let mut remap = vec![0u32; clusters];
    for (new_id, &old_id) in order.iter().enumerate() {
        remap[old_id as usize] = new_id as u32;
    }
    assignment.iter().map(|&c| remap[c as usize]).collect()
}

/// The k′-sweep of Figure 10: for each k′, the number of clusters and the
/// modularity. Also reports the connected-component count, which explains
/// the k′ = 1 fragmentation regime.
pub fn k_sweep(
    embedding: &Embedding<Ipv4>,
    ks: &[usize],
    seed: u64,
    threads: usize,
) -> Vec<KSweepPoint> {
    k_sweep_with(embedding, ks, seed, threads, &NeighborBackend::Exact)
}

/// [`k_sweep`] with an explicit neighbour-search backend.
pub fn k_sweep_with(
    embedding: &Embedding<Ipv4>,
    ks: &[usize],
    seed: u64,
    threads: usize,
    backend: &NeighborBackend,
) -> Vec<KSweepPoint> {
    // Normalise once for the whole sweep.
    let normed = Matrix::new(embedding.vectors(), embedding.len(), embedding.dim()).normalized();
    ks.iter()
        .map(|&k| {
            let graph = build_knn_graph_normalized(
                &normed,
                &KnnGraphConfig {
                    k,
                    threads,
                    mutual: false,
                    backend: backend.clone(),
                },
            );
            let partition = louvain(&graph, seed);
            let (_, components) = connected_components(&graph);
            KSweepPoint {
                k,
                clusters: partition.communities,
                modularity: partition.modularity,
                components,
            }
        })
        .collect()
}

/// One point of the Figure 10 sweep.
#[derive(Clone, Debug)]
pub struct KSweepPoint {
    /// k′ value.
    pub k: usize,
    /// Louvain cluster count.
    pub clusters: usize,
    /// Partition modularity.
    pub modularity: f64,
    /// Connected components of the k′-NN graph.
    pub components: usize,
}

/// Matches discovered clusters against hidden campaign labels: for each
/// cluster, the dominant campaign and its purity. Used by validation tests
/// and the Table 5 experiment.
pub fn dominant_labels<L: Eq + std::hash::Hash + Copy>(
    clustering: &Clustering,
    embedding: &Embedding<Ipv4>,
    truth: &HashMap<Ipv4, L>,
) -> Vec<Option<(L, f64)>> {
    let members = clustering.members(embedding);
    members
        .iter()
        .map(|ips| {
            let mut counts: HashMap<L, usize> = HashMap::new();
            let mut total = 0usize;
            for ip in ips {
                if let Some(&l) = truth.get(ip) {
                    *counts.entry(l).or_insert(0) += 1;
                    total += 1;
                }
            }
            counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, c)| {
                (
                    l,
                    if total == 0 {
                        0.0
                    } else {
                        c as f64 / total as f64
                    },
                )
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use darkvec_w2v::Vocab;

    /// A synthetic embedding with three planted groups of 8 senders.
    fn planted() -> (Embedding<Ipv4>, HashMap<Ipv4, usize>) {
        let mut ips = Vec::new();
        let mut truth = HashMap::new();
        for g in 0..3u8 {
            for i in 0..8u8 {
                let ip = Ipv4::new(10, g, 0, i);
                ips.push(ip);
                truth.insert(ip, g as usize);
            }
        }
        let corpus: Vec<Vec<Ipv4>> = ips.iter().map(|&ip| vec![ip, ip]).collect();
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter()), 1);
        let dirs = [(1.0f32, 0.0f32, 0.0f32), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0)];
        let mut vectors = vec![0.0f32; ips.len() * 3];
        for (i, &ip) in ips.iter().enumerate() {
            let id = vocab.id(&ip).unwrap() as usize;
            let (x, y, z) = dirs[i / 8];
            let eps = (i % 8) as f32 * 0.01;
            vectors[id * 3] = x + eps;
            vectors[id * 3 + 1] = y + eps;
            vectors[id * 3 + 2] = z;
        }
        (Embedding::from_parts(vocab, vectors, 3), truth)
    }

    #[test]
    fn recovers_planted_groups() {
        let (emb, truth) = planted();
        let clustering = cluster_embedding(
            &emb,
            &ClusterConfig {
                k: 3,
                seed: 1,
                threads: 1,
                ..Default::default()
            },
        );
        assert_eq!(clustering.clusters, 3);
        // Every cluster is pure.
        for dom in dominant_labels(&clustering, &emb, &truth) {
            let (_, purity) = dom.expect("cluster has labelled members");
            assert_eq!(purity, 1.0);
        }
        assert!(clustering.modularity > 0.5);
    }

    #[test]
    fn silhouettes_high_for_planted_groups() {
        let (emb, _) = planted();
        let clustering = cluster_embedding(
            &emb,
            &ClusterConfig {
                k: 3,
                seed: 1,
                threads: 1,
                ..Default::default()
            },
        );
        for (c, s) in clustering.silhouette_ranking() {
            assert!(s > 0.5, "cluster {c} silhouette {s}");
        }
    }

    /// Canonical ids: reruns, different Louvain seeds, and different
    /// thread counts must all produce the identical assignment for a
    /// clean partition, and ids must ascend with the smallest member.
    #[test]
    fn canonical_ids_stable_across_reruns_seeds_and_threads() {
        let (emb, _) = planted();
        let base = cluster_embedding(
            &emb,
            &ClusterConfig {
                k: 3,
                seed: 1,
                threads: 1,
                ..Default::default()
            },
        );
        for (seed, threads) in [(1u64, 1usize), (1, 2), (1, 4), (7, 1), (99, 3)] {
            let other = cluster_embedding(
                &emb,
                &ClusterConfig {
                    k: 3,
                    seed,
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                base.assignment, other.assignment,
                "ids drifted for seed={seed} threads={threads}"
            );
        }
        // Cluster id order follows the smallest member address.
        let mins: Vec<Ipv4> = base
            .members(&emb)
            .iter()
            .map(|m| *m.iter().min().expect("non-empty cluster"))
            .collect();
        let mut sorted = mins.clone();
        sorted.sort();
        assert_eq!(mins, sorted, "ids must ascend with smallest member");
    }

    /// `canonical_assignment` is a pure renumbering: same partition in a
    /// permuted id labelling maps to the same canonical ids.
    #[test]
    fn canonical_assignment_invariant_to_input_labelling() {
        let (emb, _) = planted();
        let clustering = cluster_embedding(&emb, &ClusterConfig::default());
        let n = clustering.clusters as u32;
        // Rotate every id by one: a different labelling of the same partition.
        let rotated: Vec<u32> = clustering.assignment.iter().map(|&c| (c + 1) % n).collect();
        let canon_rotated = canonical_assignment(&emb, &rotated, clustering.clusters);
        assert_eq!(canon_rotated, clustering.assignment);
    }

    #[test]
    fn members_partition_vocab() {
        let (emb, _) = planted();
        let clustering = cluster_embedding(&emb, &ClusterConfig::default());
        let total: usize = clustering.members(&emb).iter().map(|m| m.len()).sum();
        assert_eq!(total, emb.len());
        assert_eq!(clustering.sizes().iter().sum::<usize>(), emb.len());
    }

    #[test]
    fn cluster_of_known_and_unknown_ip() {
        let (emb, _) = planted();
        let clustering = cluster_embedding(&emb, &ClusterConfig::default());
        assert!(clustering
            .cluster_of(&emb, &Ipv4::new(10, 0, 0, 0))
            .is_some());
        assert!(clustering
            .cluster_of(&emb, &Ipv4::new(99, 0, 0, 0))
            .is_none());
    }

    #[test]
    fn k_sweep_declines_from_fragmentation() {
        let (emb, _) = planted();
        let points = k_sweep(&emb, &[1, 3, 6], 1, 1);
        assert_eq!(points.len(), 3);
        // More neighbours => no more clusters than the fragmented regime.
        assert!(points[0].clusters >= points[2].clusters);
        for p in &points {
            assert!((-0.5..=1.0).contains(&p.modularity));
        }
    }
}
