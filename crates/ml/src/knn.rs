//! Parallel brute-force k-nearest-neighbour search under cosine similarity.
//!
//! DarkVec's embeddings have 10^4–10^5 rows of 50 dimensions, where exact
//! brute force (normalise once, then dot products) is both simple and fast —
//! a few hundred million fused multiply-adds, spread over cores with
//! crossbeam scoped threads.

use crate::vectors::{dot, normalize_rows, Matrix};

/// One neighbour of a query row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// Row index of the neighbour.
    pub index: usize,
    /// Cosine similarity to the query row.
    pub similarity: f32,
}

/// Computes, for every row of `matrix`, its `k` nearest other rows by
/// cosine similarity (self excluded), ordered by decreasing similarity.
///
/// `threads = 0` uses one thread per available core.
///
/// # Panics
/// Panics if `k == 0`.
pub fn knn_all(matrix: Matrix<'_>, k: usize, threads: usize) -> Vec<Vec<Neighbor>> {
    assert!(k > 0, "k must be positive");
    let _span = darkvec_obs::span!("ml.knn");
    let n = matrix.rows();
    if n == 0 {
        return Vec::new();
    }
    darkvec_obs::metrics::counter("ml.knn.queries").add(n as u64);
    // Normalise once so similarity is a dot product.
    let mut normed = matrix.data().to_vec();
    normalize_rows(&mut normed, matrix.dim());
    let normed = Matrix::new(&normed, n, matrix.dim());

    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    }
    .min(n);

    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
    let chunk = n.div_ceil(threads);
    crossbeam::scope(|scope| {
        for (c, out) in results.chunks_mut(chunk).enumerate() {
            let normed = &normed;
            scope.spawn(move |_| {
                let base = c * chunk;
                for (off, slot) in out.iter_mut().enumerate() {
                    *slot = knn_row(*normed, base + off, k);
                }
            });
        }
    })
    .expect("knn worker panicked");
    results
}

/// The `k` nearest rows to row `query` of an already-normalised matrix.
fn knn_row(normed: Matrix<'_>, query: usize, k: usize) -> Vec<Neighbor> {
    let q = normed.row(query);
    // Bounded insertion into a small sorted buffer: O(n·k) worst case but
    // k is tiny (≤ ~35 in every experiment) and the branch predictor loves
    // the common no-insert path.
    let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
    for i in 0..normed.rows() {
        if i == query {
            continue;
        }
        let sim = dot(q, normed.row(i));
        if best.len() == k && sim <= best[k - 1].similarity {
            continue;
        }
        let pos = best.partition_point(|b| b.similarity >= sim);
        best.insert(
            pos,
            Neighbor {
                index: i,
                similarity: sim,
            },
        );
        if best.len() > k {
            best.pop();
        }
    }
    best
}

/// The `k` nearest rows to an external query vector (not a row of the
/// matrix). Used when classifying new senders against a trained embedding.
pub fn knn_query(matrix: Matrix<'_>, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert!(k > 0, "k must be positive");
    assert_eq!(query.len(), matrix.dim(), "query dimension mismatch");
    let mut normed = matrix.data().to_vec();
    normalize_rows(&mut normed, matrix.dim());
    let normed = Matrix::new(&normed, matrix.rows(), matrix.dim());
    let mut q = query.to_vec();
    normalize_rows(&mut q, query.len().max(1));
    let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
    for i in 0..normed.rows() {
        let sim = dot(&q, normed.row(i));
        if best.len() == k && sim <= best[k - 1].similarity {
            continue;
        }
        let pos = best.partition_point(|b| b.similarity >= sim);
        best.insert(
            pos,
            Neighbor {
                index: i,
                similarity: sim,
            },
        );
        if best.len() > k {
            best.pop();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three tight groups on the unit circle.
    fn grouped_matrix() -> Vec<f32> {
        let mut data = Vec::new();
        for (cx, cy) in [(1.0f32, 0.0f32), (0.0, 1.0), (-1.0, 0.0)] {
            for d in 0..4 {
                let eps = d as f32 * 0.01;
                data.extend_from_slice(&[cx + eps, cy + eps]);
            }
        }
        data
    }

    #[test]
    fn neighbours_come_from_own_group() {
        let data = grouped_matrix();
        let m = Matrix::new(&data, 12, 2);
        let nn = knn_all(m, 3, 1);
        for (i, neigh) in nn.iter().enumerate() {
            assert_eq!(neigh.len(), 3);
            let group = i / 4;
            for n in neigh {
                assert_eq!(n.index / 4, group, "row {i} got neighbour {}", n.index);
                assert_ne!(n.index, i, "self must be excluded");
            }
        }
    }

    #[test]
    fn neighbours_sorted_by_similarity() {
        let data = grouped_matrix();
        let m = Matrix::new(&data, 12, 2);
        for neigh in knn_all(m, 5, 1) {
            for pair in neigh.windows(2) {
                assert!(pair[0].similarity >= pair[1].similarity);
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let data = grouped_matrix();
        let m = Matrix::new(&data, 12, 2);
        let serial = knn_all(m, 4, 1);
        let parallel = knn_all(m, 4, 4);
        for (s, p) in serial.iter().zip(&parallel) {
            let si: Vec<usize> = s.iter().map(|n| n.index).collect();
            let pi: Vec<usize> = p.iter().map(|n| n.index).collect();
            assert_eq!(si, pi);
        }
    }

    #[test]
    fn k_larger_than_rows_returns_all_others() {
        let data = [1.0f32, 0.0, 0.9, 0.1, 0.0, 1.0];
        let m = Matrix::new(&data, 3, 2);
        let nn = knn_all(m, 10, 1);
        assert_eq!(nn[0].len(), 2);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::new(&[], 0, 3);
        assert!(knn_all(m, 3, 1).is_empty());
    }

    #[test]
    fn knn_query_finds_nearest_group() {
        let data = grouped_matrix();
        let m = Matrix::new(&data, 12, 2);
        let res = knn_query(m, &[0.1, 0.95], 4);
        assert_eq!(res.len(), 4);
        for n in &res {
            assert!(
                (4..8).contains(&n.index),
                "query near group 1, got {}",
                n.index
            );
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let data = [1.0f32, 0.0];
        knn_all(Matrix::new(&data, 1, 2), 0, 1);
    }
}
