//! The trained embedding: a vocabulary plus one dense vector per word.

use crate::vocab::{TokenId, Vocab};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt::Display;
use std::hash::Hash;
use std::path::Path;
use std::str::FromStr;

/// An embedding matrix keyed by words of type `W`.
///
/// Rows are stored row-major in a flat `Vec<f32>` indexed by
/// [`TokenId`]; lookups by word go through the vocabulary index.
#[derive(Clone, Debug)]
pub struct Embedding<W> {
    vocab: Vocab<W>,
    vectors: Vec<f32>,
    dim: usize,
}

impl<W: Eq + Hash + Clone + Ord> Embedding<W> {
    /// Assembles an embedding from a vocabulary and its row-major matrix.
    ///
    /// # Panics
    /// Panics if the matrix size does not match `vocab.len() * dim`.
    pub fn from_parts(vocab: Vocab<W>, vectors: Vec<f32>, dim: usize) -> Self {
        assert_eq!(vectors.len(), vocab.len() * dim, "matrix shape mismatch");
        Embedding {
            vocab,
            vectors,
            dim,
        }
    }

    /// Number of embedded words.
    pub fn len(&self) -> usize {
        self.vocab.len()
    }

    /// True when no words are embedded.
    pub fn is_empty(&self) -> bool {
        self.vocab.is_empty()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The vocabulary backing this embedding.
    pub fn vocab(&self) -> &Vocab<W> {
        &self.vocab
    }

    /// The full row-major matrix.
    pub fn vectors(&self) -> &[f32] {
        &self.vectors
    }

    /// The vector of a word, if embedded.
    pub fn get(&self, word: &W) -> Option<&[f32]> {
        self.vocab.id(word).map(|id| self.row(id))
    }

    /// The vector behind a token id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn row(&self, id: TokenId) -> &[f32] {
        let i = id as usize * self.dim;
        &self.vectors[i..i + self.dim]
    }

    /// Cosine similarity between two embedded words.
    /// `None` if either is out of vocabulary.
    pub fn cosine(&self, a: &W, b: &W) -> Option<f32> {
        Some(cosine(self.get(a)?, self.get(b)?))
    }

    /// The `topn` nearest words to `word` by cosine similarity, excluding
    /// the word itself, sorted by decreasing similarity.
    pub fn most_similar(&self, word: &W, topn: usize) -> Vec<(W, f32)> {
        let Some(target_id) = self.vocab.id(word) else {
            return Vec::new();
        };
        let target = self.row(target_id);
        let mut sims: Vec<(TokenId, f32)> = (0..self.len() as TokenId)
            .filter(|&id| id != target_id)
            .map(|id| (id, cosine(target, self.row(id))))
            .collect();
        // A NaN similarity (corrupt row) must not make the order
        // input-dependent or float to the top of the list; rank it below
        // every finite similarity, ties broken by token id.
        let rank = |x: f32| if x.is_nan() { f32::NEG_INFINITY } else { x };
        sims.sort_by(|a, b| rank(b.1).total_cmp(&rank(a.1)).then_with(|| a.0.cmp(&b.0)));
        sims.truncate(topn);
        sims.into_iter()
            .map(|(id, s)| (self.vocab.word(id).clone(), s))
            .collect()
    }

    /// A copy with L2-normalised rows, so cosine similarity becomes a dot
    /// product — what the kNN search wants.
    pub fn normalized(&self) -> Embedding<W> {
        let mut vectors = self.vectors.clone();
        darkvec_kernels::normalize_rows(&mut vectors, self.dim.max(1));
        Embedding {
            vocab: self.vocab.clone(),
            vectors,
            dim: self.dim,
        }
    }
}

/// Cosine similarity of two equal-length vectors; 0 when either is zero.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
    for (x, y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

/// Binary serialisation ("DKVE" + version): word strings are written with
/// a u16 length prefix, vectors as little-endian f32.
const MAGIC: &[u8; 4] = b"DKVE";
const VERSION: u8 = 1;

impl<W: Eq + Hash + Clone + Ord + Display + FromStr> Embedding<W> {
    /// Encodes the embedding to bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.len() * (self.dim * 4 + 16));
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u32_le(self.len() as u32);
        buf.put_u32_le(self.dim as u32);
        for id in 0..self.len() as TokenId {
            let w = self.vocab.word(id).to_string();
            let bytes = w.as_bytes();
            buf.put_u16_le(bytes.len() as u16);
            buf.put_slice(bytes);
            buf.put_u64_le(self.vocab.count(id));
            for &v in self.row(id) {
                buf.put_f32_le(v);
            }
        }
        buf.freeze()
    }

    /// Decodes an embedding from bytes produced by [`Embedding::to_bytes`].
    pub fn from_bytes(mut buf: impl Buf) -> Result<Self, String> {
        if buf.remaining() < 13 {
            return Err("truncated header".into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err("bad magic".into());
        }
        if buf.get_u8() != VERSION {
            return Err("unsupported version".into());
        }
        let n = buf.get_u32_le() as usize;
        let dim = buf.get_u32_le() as usize;
        // Plausibility before allocation: every record is at least
        // 2 (length prefix) + 8 (count) + dim*4 bytes, so a corrupt header
        // cannot demand more memory than the buffer could possibly encode.
        let min_record = (dim as u64)
            .checked_mul(4)
            .and_then(|v| v.checked_add(10))
            .ok_or("implausible dimension")?;
        let need = (n as u64)
            .checked_mul(min_record)
            .ok_or("implausible record count")?;
        if need > buf.remaining() as u64 {
            return Err(format!(
                "truncated or corrupt: header promises {need} bytes, {} remain",
                buf.remaining()
            ));
        }
        let mut pairs: Vec<(W, u64)> = Vec::with_capacity(n);
        let mut words = Vec::with_capacity(n);
        let mut vectors = Vec::with_capacity(n * dim);
        for _ in 0..n {
            if buf.remaining() < 2 {
                return Err("truncated word".into());
            }
            let wlen = buf.get_u16_le() as usize;
            if buf.remaining() < wlen + 8 + dim * 4 {
                return Err("truncated record".into());
            }
            let mut wbytes = vec![0u8; wlen];
            buf.copy_to_slice(&mut wbytes);
            let s = String::from_utf8(wbytes).map_err(|e| e.to_string())?;
            let w: W = s.parse().map_err(|_| format!("unparsable word {s:?}"))?;
            words.push(w.clone());
            pairs.push((w, buf.get_u64_le()));
            for _ in 0..dim {
                vectors.push(buf.get_f32_le());
            }
        }
        // Rebuild the vocabulary directly from the recorded counts; the
        // re-rank assigns the same ids as the original build (same counts,
        // same tie-break), so reorder the rows accordingly to be safe.
        let vocab = Vocab::from_counts(pairs)?;
        let mut reordered = vec![0.0f32; vectors.len()];
        for (orig_id, w) in words.iter().enumerate() {
            let new_id = vocab.id(w).ok_or("vocab rebuild lost a word")? as usize;
            reordered[new_id * dim..(new_id + 1) * dim]
                .copy_from_slice(&vectors[orig_id * dim..(orig_id + 1) * dim]);
        }
        Ok(Embedding::from_parts(vocab, reordered, dim))
    }

    /// Saves to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Loads from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::from_bytes(&data[..])
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Embedding<String> {
        let corpus = [
            vec!["x".to_string(), "x".to_string(), "y".to_string()],
            vec!["z".to_string(), "x".to_string()],
        ];
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter()), 1);
        // ids: x=0 (3), y/z tie broken by order: y=1, z=2
        let vectors = vec![
            1.0, 0.0, // x
            0.0, 1.0, // y
            1.0, 1.0, // z
        ];
        Embedding::from_parts(vocab, vectors, 2)
    }

    #[test]
    fn get_and_row() {
        let e = sample();
        assert_eq!(e.get(&"x".to_string()).unwrap(), &[1.0, 0.0]);
        assert_eq!(e.get(&"nope".to_string()), None);
        assert_eq!(e.dim(), 2);
        assert_eq!(e.len(), 3);
    }

    #[test]
    fn cosine_values() {
        let e = sample();
        assert!((e.cosine(&"x".into(), &"y".into()).unwrap() - 0.0).abs() < 1e-6);
        let xz = e.cosine(&"x".into(), &"z".into()).unwrap();
        assert!((xz - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert_eq!(e.cosine(&"x".into(), &"nope".into()), None);
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn most_similar_sorted_and_excludes_self() {
        let e = sample();
        let sims = e.most_similar(&"x".to_string(), 10);
        assert_eq!(sims.len(), 2);
        assert_eq!(sims[0].0, "z");
        assert!(sims[0].1 > sims[1].1);
        assert!(e.most_similar(&"nope".to_string(), 3).is_empty());
    }

    #[test]
    fn normalized_rows_have_unit_norm() {
        let e = sample().normalized();
        for id in 0..e.len() as TokenId {
            let n: f32 = e.row(id).iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-6);
        }
        // Normalisation preserves cosine similarity.
        let orig = sample();
        let a = orig.cosine(&"x".into(), &"z".into()).unwrap();
        let b = e.cosine(&"x".into(), &"z".into()).unwrap();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn bytes_round_trip() {
        let e = sample();
        let back = Embedding::<String>::from_bytes(&e.to_bytes()[..]).unwrap();
        assert_eq!(back.len(), e.len());
        assert_eq!(back.dim(), e.dim());
        for w in ["x", "y", "z"] {
            assert_eq!(back.get(&w.to_string()), e.get(&w.to_string()), "word {w}");
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(Embedding::<String>::from_bytes(&b"oops"[..]).is_err());
        let mut good = sample().to_bytes().to_vec();
        good.truncate(good.len() - 2);
        assert!(Embedding::<String>::from_bytes(&good[..]).is_err());
    }

    /// Fuzz-style: truncating a valid model at *every* byte boundary must
    /// produce a clean error — no panic, no partial model.
    #[test]
    fn from_bytes_fails_cleanly_at_every_truncation_point() {
        let good = sample().to_bytes().to_vec();
        for cut in 0..good.len() {
            let r = Embedding::<String>::from_bytes(&good[..cut]);
            assert!(r.is_err(), "truncation at byte {cut}/{} parsed", good.len());
        }
        assert!(Embedding::<String>::from_bytes(&good[..]).is_ok());
    }

    /// Corrupt headers promising absurd sizes must be rejected before any
    /// large allocation (a corrupt cache file must not abort the process).
    #[test]
    fn from_bytes_rejects_implausible_headers() {
        let mut huge_n = sample().to_bytes().to_vec();
        huge_n[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Embedding::<String>::from_bytes(&huge_n[..]).is_err());
        let mut huge_dim = sample().to_bytes().to_vec();
        huge_dim[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(Embedding::<String>::from_bytes(&huge_dim[..]).is_err());
    }

    /// Regression: a NaN row must not make `most_similar` ordering
    /// input-dependent or panic — NaN sorts below every finite similarity.
    #[test]
    fn most_similar_is_stable_with_nan_rows() {
        let corpus = [vec![
            "a".to_string(),
            "b".to_string(),
            "c".to_string(),
            "d".to_string(),
        ]];
        let vocab = Vocab::build(corpus.iter().map(|s| s.iter()), 1);
        let vectors = vec![
            1.0,
            0.0, // a
            f32::NAN,
            f32::NAN, // b: corrupt row
            1.0,
            0.1, // c
            0.0,
            1.0, // d
        ];
        let e = Embedding::from_parts(vocab, vectors, 2);
        let sims = e.most_similar(&"a".to_string(), 10);
        assert_eq!(sims.len(), 3);
        // Finite similarities first (c closest, then d), NaN last.
        assert_eq!(sims[0].0, "c");
        assert_eq!(sims[1].0, "d");
        assert_eq!(sims[2].0, "b");
        assert!(sims[2].1.is_nan());
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_parts_checks_shape() {
        let vocab: Vocab<String> =
            Vocab::build([vec!["a".to_string()]].iter().map(|s| s.iter()), 1);
        Embedding::from_parts(vocab, vec![1.0, 2.0, 3.0], 2);
    }

    #[test]
    fn file_round_trip() {
        let e = sample();
        let dir = std::env::temp_dir().join("darkvec-w2v-emb-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("emb.bin");
        e.save(&path).unwrap();
        let back = Embedding::<String>::load(&path).unwrap();
        assert_eq!(back.get(&"x".to_string()), e.get(&"x".to_string()));
        std::fs::remove_file(&path).ok();
    }
}
