//! Std-only TCP metrics endpoint.
//!
//! [`MetricsServer::start`] binds a localhost port and serves the live
//! metrics registry over bare HTTP/1.1 — no framework, no dependencies,
//! one background thread with a non-blocking accept loop. Opt-in from
//! any CLI command via `--metrics-addr 127.0.0.1:9100` (port 0 picks a
//! free port; the bound address is logged). This is the exact surface a
//! future `darkvec serve` daemon reuses.
//!
//! Routes:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4):
//!   counters, gauges, and histograms with cumulative `le` buckets,
//!   `_sum`, `_count`, plus `p50/p90/p99/p999` as separate gauges.
//!   Metric names are prefixed `darkvec_` with dots mapped to
//!   underscores.
//! * `GET /metrics.json` — the same snapshot as the manifest `metrics`
//!   section (counts, sums, quantiles, sparse buckets).
//! * `GET /healthz` — `ok`.

// lint: relaxed-ok(scrape/shutdown counters are metrics counters; the listener's accept loop synchronizes via the socket, not these atomics)

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::{hdr, manifest, metrics};

/// A running metrics endpoint; shuts down when dropped (or via
/// [`stop`](MetricsServer::stop)).
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9100`; port 0 for an ephemeral
    /// port) and starts serving in a background thread.
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let handle = std::thread::Builder::new()
            .name("obs-metrics".to_string())
            .spawn(move || accept_loop(listener, &flag))?;
        Ok(MetricsServer {
            addr: bound,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the server thread.
    pub fn stop(mut self) {
        self.shutdown_and_join();
    }

    fn shutdown_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn accept_loop(listener: TcpListener, shutdown: &AtomicBool) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Serve inline: a scrape is a handful of milliseconds and
                // scrapers are few; no per-connection threads needed.
                let _ = handle_connection(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read the request head; we only care about the request line.
    let mut buf = [0u8; 4096];
    let mut len = 0;
    while len < buf.len() {
        let n = stream.read(&mut buf[len..])?;
        if n == 0 {
            break;
        }
        len += n;
        if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(&metrics::snapshot()),
        ),
        "/metrics.json" => (
            "200 OK",
            "application/json",
            manifest::snapshot_to_json(&metrics::snapshot()).pretty(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /metrics.json, /healthz\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A metric name in Prometheus form: `darkvec_` prefix, non-alphanumeric
/// characters mapped to `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("darkvec_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a metrics snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snap: &metrics::Snapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let pname = prom_name(name);
        let _ = writeln!(out, "# TYPE {pname} counter");
        let _ = writeln!(out, "{pname} {value}");
    }
    for (name, value) in &snap.gauges {
        let pname = prom_name(name);
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {value}");
    }
    for (name, (count, sum, buckets)) in &snap.histograms {
        let pname = prom_name(name);
        let _ = writeln!(out, "# TYPE {pname} histogram");
        let mut cumulative = 0u64;
        for &(floor, n) in buckets {
            cumulative += n;
            // `le` is the largest value the bucket can hold (our buckets
            // are [floor, ceil), Prometheus buckets are inclusive).
            let le = hdr::bucket_ceil(hdr::bucket_index(floor)) - 1;
            let _ = writeln!(out, "{pname}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{pname}_sum {sum}");
        let _ = writeln!(out, "{pname}_count {count}");
        for (q, label) in [(0.50, "p50"), (0.90, "p90"), (0.99, "p99"), (0.999, "p999")] {
            let est = hdr::quantile_from_buckets(buckets, *count, q);
            let _ = writeln!(out, "# TYPE {pname}_{label} gauge");
            let _ = writeln!(out, "{pname}_{label} {est}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("response has header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_prometheus_exposition_end_to_end() {
        metrics::counter("test.serve_counter").add(11);
        metrics::histogram("test.serve_hist").record(500);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
        assert!(head.contains("text/plain"));
        assert!(
            body.contains("darkvec_test_serve_counter 11")
                || body
                    .lines()
                    .any(|l| l.starts_with("darkvec_test_serve_counter ")),
            "counter exposed:\n{body}"
        );
        assert!(body.contains("# TYPE darkvec_test_serve_hist histogram"));
        assert!(body.contains("darkvec_test_serve_hist_bucket{le=\"+Inf\"}"));
        assert!(body.contains("darkvec_test_serve_hist_count"));
        assert!(body.contains("darkvec_test_serve_hist_p99"));

        // Exposition parses line-by-line: every non-comment line is
        // `name{labels} value` or `name value` with a numeric value.
        for line in body.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("name value");
            assert!(value.parse::<f64>().is_ok(), "numeric value in: {line}");
        }

        let (head, body) = http_get(addr, "/metrics.json");
        assert!(head.starts_with("HTTP/1.1 200"));
        let parsed = crate::Json::parse(&body).expect("valid JSON snapshot");
        assert!(parsed
            .get("counters")
            .and_then(|c| c.get("test.serve_counter"))
            .is_some());

        let (head, body) = http_get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));
        assert_eq!(body, "ok\n");

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
        // After stop, connections are refused (or at least not served).
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || TcpStream::connect(addr).is_ok(),
            "socket released after stop"
        );
    }

    #[test]
    fn cumulative_buckets_are_monotone() {
        let h = metrics::histogram("test.serve_monotone");
        for v in [1u64, 5, 40, 40, 1000, 100_000] {
            h.record(v);
        }
        let text = prometheus_text(&metrics::snapshot());
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("darkvec_test_serve_monotone_bucket"))
        {
            let value: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
            assert!(value >= last, "cumulative counts are monotone: {line}");
            last = value;
        }
        assert!(last >= 6, "+Inf bucket holds all samples");
    }
}
